"""Crash-injection recovery oracle: every kill point, bit-identical recovery.

The durability layer (:mod:`repro.durability`) promises that a runtime
killed at *any* moment — between committed quiescence windows or mid-WAL
append — recovers to exactly the state its surviving WAL prefix describes.
This harness turns that promise into a differential oracle:

1. Run a durable runtime through a seeded churn script once, recording after
   every committed batch the WAL's byte length plus the full expected state
   of an uncrashed twin: per-node store snapshots, provenance fingerprints,
   per-partition provenance versions, per-VID reachability versions and
   distributed lineage/participants answers.
2. For every kill point ``k``, materialise the crash by copying the durable
   directory with the WAL truncated to the recorded length — byte-identical
   to a process kill right after batch ``k``'s commit barrier (the WAL is
   flushed at append time, *before* the simulator drains the window, so a
   record boundary is exactly a commit point).
3. Torn-tail variants cut mid-record or flip payload bytes inside the next
   record, modelling a kill mid-``write(2)``; recovery must repair the tail
   and come back as the longest intact prefix — batch ``k`` again.
4. Recover (genesis replay and, where checkpoints exist, checkpoint
   bootstrap + tail replay) and assert every recorded expectation matches.

Genesis recovery replays the full logical history, so it must reproduce
even history-dependent counters (provenance versions, per-VID versions)
bit-identically.  Checkpoint recovery bootstraps from base facts, which by
the engine's confluence contract reproduces state, provenance and answers
but *not* version counters — the documented weaker guarantee (see
docs/architecture.md, "Durability & recovery").

Seeding matches the other property harnesses: fixed ``SEEDS`` plus an
optional ``NETTRAILS_CHURN_SEED`` from the environment (the CI
property-recovery job's random leg draws one, prints it, and exports it);
the seed appears in every parametrize id and assertion message.  The
execution backend and interval-index axes arrive through
``NETTRAILS_BACKEND`` / ``NETTRAILS_INTERVAL_INDEX``, exactly as for the
other property matrices.
"""

from __future__ import annotations

import copy
import os
import random
import shutil

import pytest

from repro.core.query import DistributedQueryEngine
from repro.durability import RecoveryManager, wal_path
from repro.engine import topology
from repro.engine.runtime import NetTrailsRuntime
from repro.protocols import mincost
from repro.workloads.churn import ChurnBatch, apply_batch, random_link_churn


def _seeds():
    seeds = [3, 11]
    override = os.environ.get("NETTRAILS_CHURN_SEED")
    if override is not None:
        seeds.append(int(override))
    return sorted(set(seeds))


SEEDS = _seeds()

TOPOLOGIES = {
    "star": lambda: topology.star(6),
    "ring": lambda: topology.ring(6),
}

#: num_shards axis of the heavy matrix (None = unsharded store).
SHARD_COUNTS = [None, 4]


def generate_churn_script(seed, net, steps=5):
    mirror = copy.deepcopy(net)
    rng = random.Random(seed)
    return [
        ChurnBatch(index=index, phase="random_link_churn", ops=ops)
        for index, ops in enumerate(random_link_churn(mirror, rng, steps))
    ]


def lineage_answers(runtime, relation="minCost", limit=2):
    queries = DistributedQueryEngine(runtime)
    answers = []
    for values in sorted(runtime.state(relation), key=repr)[:limit]:
        lineage = queries.lineage(relation, list(values))
        participants = queries.participants(relation, list(values))
        answers.append(
            (values, sorted(str(ref) for ref in lineage.value), set(participants.value))
        )
    return answers


def expected_state(runtime, canon):
    """Everything a genesis recovery must reproduce bit-identically.

    *canon* carries the suite-wide canonicalisers (the ``store_snapshots``
    and ``provenance_fingerprint`` conftest fixtures), so this harness
    shares one definition of "indistinguishable" with every other
    equivalence suite.
    """
    snapshots, fingerprint = canon
    return {
        "snapshots": snapshots(runtime),
        "fingerprint": fingerprint(runtime),
        "versions": runtime.provenance.versions(),
        "vid_versions": runtime.provenance.vid_versions(),
        "answers": lineage_answers(runtime),
    }


@pytest.fixture
def canon(store_snapshots, provenance_fingerprint):
    return (store_snapshots, provenance_fingerprint)


def run_durable_history(durable_dir, net, script, canon, checkpoint_after=None, **knobs):
    """Run the whole history once; returns per-kill-point (wal_bytes, expected).

    Kill point ``k`` is "right after the *k*-th committed window" (window 0
    is the link seeding).  ``checkpoint_after=k`` compacts after window k,
    so later kill points cover recovery *across* a checkpoint record.
    """
    wal_file = wal_path(durable_dir)
    kill_points = []
    with NetTrailsRuntime(
        mincost.SOURCE, copy.deepcopy(net),
        durable_dir=durable_dir, wal_fsync=False, **knobs,
    ) as runtime:
        runtime.seed_links(run=True)
        if checkpoint_after == 0:
            runtime.checkpoint()
        kill_points.append((wal_file.stat().st_size, expected_state(runtime, canon)))
        for index, batch in enumerate(script):
            apply_batch(runtime, batch, run=True)
            if checkpoint_after == index + 1:
                runtime.checkpoint()
            kill_points.append((wal_file.stat().st_size, expected_state(runtime, canon)))
    return kill_points


def crash_copy(durable_dir, target_dir, wal_bytes, mutate=None):
    """A byte-exact image of the durable dir as a kill at *wal_bytes* left it."""
    shutil.copytree(durable_dir, target_dir)
    wal_file = wal_path(target_dir)
    raw = bytearray(wal_file.read_bytes()[:wal_bytes])
    if mutate is not None:
        raw = mutate(raw)
    wal_file.write_bytes(bytes(raw))
    return target_dir


def assert_recovered_matches(result, expected, canon, where, exact_versions=True):
    snapshots, fingerprint = canon
    runtime = result.runtime
    try:
        assert snapshots(runtime) == expected["snapshots"], where
        assert fingerprint(runtime) == expected["fingerprint"], where
        assert lineage_answers(runtime) == expected["answers"], where
        if exact_versions:
            assert runtime.provenance.versions() == expected["versions"], where
            assert runtime.provenance.vid_versions() == expected["vid_versions"], where
    finally:
        runtime.close()


class TestRecoverySmoke:
    """Tier-1 guard: a handful of kill points on one seed/topology."""

    def test_kill_points_recover_bit_identically(self, tmp_path, canon):
        net = TOPOLOGIES["ring"]()
        script = generate_churn_script(SEEDS[0], net, steps=3)
        history = tmp_path / "history"
        kill_points = run_durable_history(history, net, script, canon)
        for k in (0, len(kill_points) - 1):
            wal_bytes, expected = kill_points[k]
            crash_dir = crash_copy(history, tmp_path / f"crash-{k}", wal_bytes)
            result = RecoveryManager(crash_dir).recover(mode="genesis", attach=False)
            where = f"smoke kill_point={k}"
            assert result.batches_replayed == k + 1, where
            assert not result.torn, where
            assert_recovered_matches(result, expected, canon, where)

    def test_torn_tail_recovers_to_prefix(self, tmp_path, canon):
        net = TOPOLOGIES["ring"]()
        script = generate_churn_script(SEEDS[0], net, steps=3)
        history = tmp_path / "history"
        kill_points = run_durable_history(history, net, script, canon)
        wal_bytes, expected = kill_points[-2]
        # Kill mid-append of the final batch record: 7 bytes of it survive.
        crash_dir = crash_copy(history, tmp_path / "torn", wal_bytes + 7)
        result = RecoveryManager(crash_dir).recover(mode="genesis", attach=False)
        assert result.torn and result.truncated_bytes == 7
        assert result.batches_replayed == len(kill_points) - 1
        assert_recovered_matches(result, expected, canon, "smoke torn tail")


@pytest.mark.slow
@pytest.mark.recovery
class TestCrashInjectionOracle:
    """The exhaustive matrix: seeds × topologies × shards × every kill point."""

    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    @pytest.mark.parametrize("topology_name", sorted(TOPOLOGIES))
    @pytest.mark.parametrize(
        "num_shards", SHARD_COUNTS, ids=lambda k: f"shards{k or 0}"
    )
    def test_every_kill_point_recovers_bit_identically(
        self, tmp_path, canon, topology_name, seed, num_shards
    ):
        net = TOPOLOGIES[topology_name]()
        script = generate_churn_script(seed, net)
        context = (
            f"topology={topology_name} seed={seed} shards={num_shards} "
            f"(NETTRAILS_CHURN_SEED={seed})"
        )
        knobs = {} if num_shards is None else {"num_shards": num_shards}
        history = tmp_path / "history"
        kill_points = run_durable_history(history, net, script, canon, **knobs)

        for k, (wal_bytes, expected) in enumerate(kill_points):
            where = f"{context} kill_point={k}"
            crash_dir = crash_copy(history, tmp_path / f"crash-{k}", wal_bytes)
            result = RecoveryManager(crash_dir).recover(mode="genesis", attach=False)
            assert result.batches_replayed == k + 1, where
            assert not result.torn, where
            assert_recovered_matches(result, expected, canon, where)
            shutil.rmtree(crash_dir)

    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    @pytest.mark.parametrize("cut", [1, 3, 24], ids=lambda c: f"cut{c}")
    def test_torn_tails_recover_to_longest_intact_prefix(
        self, tmp_path, canon, seed, cut
    ):
        """Mid-append kills: partial next record ⇒ state of the previous batch."""
        net = TOPOLOGIES["ring"]()
        script = generate_churn_script(seed, net)
        context = f"torn seed={seed} cut={cut} (NETTRAILS_CHURN_SEED={seed})"
        history = tmp_path / "history"
        kill_points = run_durable_history(history, net, script, canon)

        for k in range(len(kill_points) - 1):
            wal_bytes, expected = kill_points[k]
            next_bytes = kill_points[k + 1][0]
            torn_len = min(cut, next_bytes - wal_bytes - 1)
            where = f"{context} kill_point={k}+{torn_len}B"
            crash_dir = crash_copy(
                history, tmp_path / f"torn-{k}", wal_bytes + torn_len
            )
            result = RecoveryManager(crash_dir).recover(mode="genesis", attach=False)
            assert result.torn, where
            assert result.truncated_bytes == torn_len, where
            assert result.batches_replayed == k + 1, where
            assert_recovered_matches(result, expected, canon, where)
            shutil.rmtree(crash_dir)

    @pytest.mark.parametrize("seed", SEEDS[:1], ids=lambda s: f"seed{s}")
    def test_flipped_byte_in_tail_record_is_discarded(self, tmp_path, canon, seed):
        """Bit rot in the final record fails its content hash ⇒ prefix state."""
        net = TOPOLOGIES["ring"]()
        script = generate_churn_script(seed, net)
        history = tmp_path / "history"
        kill_points = run_durable_history(history, net, script, canon)
        wal_bytes, expected = kill_points[-2]
        final_bytes = kill_points[-1][0]

        def flip(raw):
            raw[wal_bytes + 10] ^= 0xFF
            return raw

        crash_dir = crash_copy(history, tmp_path / "flip", final_bytes, mutate=flip)
        result = RecoveryManager(crash_dir).recover(mode="genesis", attach=False)
        where = f"flip seed={seed} (NETTRAILS_CHURN_SEED={seed})"
        assert result.torn and result.torn_reason == "content hash mismatch", where
        assert result.batches_replayed == len(kill_points) - 1, where
        assert_recovered_matches(result, expected, canon, where)

    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    @pytest.mark.parametrize("checkpoint_after", [0, 2], ids=lambda c: f"ckpt{c}")
    def test_checkpoint_bootstrap_matches_state_at_every_kill_point(
        self, tmp_path, canon, seed, checkpoint_after
    ):
        """Checkpoint recovery: state/prov/answer-identical, fewer batches replayed.

        Version counters are exempt — checkpoint bootstrap compresses the
        history, which is exactly the weaker guarantee the docs pin.
        """
        net = TOPOLOGIES["ring"]()
        script = generate_churn_script(seed, net)
        context = f"ckpt seed={seed} after={checkpoint_after} (NETTRAILS_CHURN_SEED={seed})"
        history = tmp_path / "history"
        kill_points = run_durable_history(
            history, net, script, canon, checkpoint_after=checkpoint_after
        )

        for k, (wal_bytes, expected) in enumerate(kill_points):
            where = f"{context} kill_point={k}"
            crash_dir = crash_copy(history, tmp_path / f"crash-{k}", wal_bytes)
            result = RecoveryManager(crash_dir).recover(mode="checkpoint", attach=False)
            if k >= checkpoint_after:
                assert result.mode == "checkpoint", where
                assert result.checkpoint_batch == checkpoint_after + 1, where
                assert result.checkpoints_verified >= 1, where
                assert result.batches_replayed == k - checkpoint_after, where
            else:
                assert result.mode == "genesis", where  # checkpoint not yet durable
            assert_recovered_matches(
                result, expected, canon, where, exact_versions=(result.mode == "genesis")
            )
            shutil.rmtree(crash_dir)
