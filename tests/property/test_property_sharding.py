"""Randomized-churn equivalence harness for sharded per-node stores.

The sharding layer (:class:`repro.engine.store.ShardedTupleStore`, per-shard
semi-naive passes in :meth:`LocalEvaluator.on_batch`, the pluggable shard
executors) promises that sharded, batched and per-delta execution are
*bit-identical* on protocol state and provenance — the same invariant the
batching property tests enforce for batch-vs-singleton replay.

This harness generates seeded random churn scripts (link removals, re-adds,
brand-new links and link flaps) over star, ring and small AS-level
topologies, replays each script on an unsharded baseline runtime and on
sharded variants (K ∈ {1, 2, 4}, serial and threaded executors), and after
*every* churn step asserts equality of

* per-node store snapshots (relation contents + derivation counts),
* the distributed provenance tables (``prov`` / ``ruleExec`` fingerprints),
* per-node provenance versions (one bump per logical batch regardless of K),

plus, at the end, the answers and participant sets of distributed lineage
queries against derived tuples.

Seeding: scripts are generated from the fixed ``SEEDS`` list by default, so
CI runs are deterministic.  Setting ``NETTRAILS_CHURN_SEED`` (an integer)
adds that seed to the matrix — the nightly-style CI job draws a random seed,
prints it, and exports it through this variable; the seed is also embedded
in the pytest parametrize id and every assertion message so failures are
reproducible with ``NETTRAILS_CHURN_SEED=<seed> pytest ...``.

Scenario generation lives in :mod:`repro.workloads.churn`
(``random_link_churn`` — the very generator the scenario driver schedules);
this module only binds seeds to traces and replays them across the shard
matrix, so the whole repo shares one definition of "random link churn".
"""

from __future__ import annotations

import copy
import os
import random
from contextlib import ExitStack

import pytest

from repro.core.query import DistributedQueryEngine
from repro.engine import topology
from repro.engine.runtime import NetTrailsRuntime
from repro.engine.store import ShardedTupleStore
from repro.protocols import mincost, path_vector
from repro.workloads.churn import ChurnBatch, apply_batch, random_link_churn


def _seeds():
    seeds = [3, 11]
    override = os.environ.get("NETTRAILS_CHURN_SEED")
    if override is not None:
        seeds.append(int(override))
    return sorted(set(seeds))


SEEDS = _seeds()

TOPOLOGIES = {
    "star": lambda: topology.star(6),
    "ring": lambda: topology.ring(6),
    "as-level": lambda: topology.isp_hierarchy(2, 2, 1, seed=5),
}

#: (num_shards, shard_workers) variants compared against the unsharded
#: baseline; workers > 1 selects the thread-pool shard executor.
SHARD_VARIANTS = [(1, 0), (2, 0), (4, 0), (1, 2), (2, 2), (4, 2)]


def generate_churn_script(seed, net, steps=6):
    """A deterministic churn trace (one :class:`ChurnBatch` per step) for *net*.

    Generation is delegated to the workload subsystem's
    :func:`~repro.workloads.churn.random_link_churn`, which tracks a topology
    mirror so every op is valid at the point it executes (no removing absent
    links, no duplicate adds); the same explicit trace is then replayed on
    every runtime under test.  A "flap" step removes and re-adds a link
    within one batch, so the deletion and re-insertion waves overlap in
    flight — exercising net-transition collapsing across shard boundaries.
    """
    mirror = copy.deepcopy(net)
    rng = random.Random(seed)
    return [
        ChurnBatch(index=index, phase="random_link_churn", ops=ops)
        for index, ops in enumerate(random_link_churn(mirror, rng, steps))
    ]


def apply_op(runtime, batch):
    """Replay one churn batch and run to quiescence."""
    apply_batch(runtime, batch, run=True)


def build_runtime(program, net, **kwargs):
    runtime = NetTrailsRuntime(program, copy.deepcopy(net), **kwargs)
    runtime.seed_links(run=True)
    return runtime


def lineage_answers(runtime, relation, limit=3):
    """Sorted lineage/participants answers for up to *limit* derived tuples."""
    queries = DistributedQueryEngine(runtime)
    answers = []
    for values in sorted(runtime.state(relation), key=repr)[:limit]:
        lineage = queries.lineage(relation, list(values))
        participants = queries.participants(relation, list(values))
        answers.append(
            (values, sorted(str(ref) for ref in lineage.value), set(participants.value))
        )
    return answers


class TestShardedChurnEquivalence:
    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    @pytest.mark.parametrize("topology_name", sorted(TOPOLOGIES))
    def test_sharded_runs_match_unsharded_baseline(
        self, topology_name, seed, global_state, provenance_fingerprint, store_snapshots
    ):
        net = TOPOLOGIES[topology_name]()
        script = generate_churn_script(seed, net)
        context = f"topology={topology_name} seed={seed} (NETTRAILS_CHURN_SEED={seed})"

        with ExitStack() as stack:
            baseline = build_runtime(mincost.program(), net)
            variants = {
                (num_shards, workers): stack.enter_context(
                    build_runtime(
                        mincost.program(), net, num_shards=num_shards, shard_workers=workers
                    )
                )
                for num_shards, workers in SHARD_VARIANTS
            }
            for (num_shards, workers), runtime in variants.items():
                for node in runtime.nodes.values():
                    assert isinstance(node.store, ShardedTupleStore), context
                    assert node.store.num_shards == num_shards, context

            for step, op in enumerate(script):
                apply_op(baseline, op)
                expected_snapshots = store_snapshots(baseline)
                expected_fingerprint = provenance_fingerprint(baseline)
                expected_versions = baseline.provenance.versions()
                for key, runtime in variants.items():
                    where = f"{context} K,workers={key} step={step} op={op}"
                    apply_op(runtime, op)
                    assert store_snapshots(runtime) == expected_snapshots, where
                    assert provenance_fingerprint(runtime) == expected_fingerprint, where
                    assert runtime.provenance.versions() == expected_versions, where

            expected_state = global_state(baseline, ["link", "path", "minCost"])
            expected_answers = lineage_answers(baseline, "minCost")
            for key, runtime in variants.items():
                where = f"{context} K,workers={key}"
                assert global_state(runtime, ["link", "path", "minCost"]) == expected_state, where
                assert lineage_answers(runtime, "minCost") == expected_answers, where

    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    def test_negation_sharded_matches_baseline(
        self, seed, global_state, provenance_fingerprint, store_snapshots
    ):
        """Negated literals probe the store during the (threaded) join
        enumeration; random offer/blocked churn must leave sharded runs
        bit-identical to the baseline."""
        program = """
        materialize(offer, infinity, infinity, keys(1, 2)).
        materialize(blocked, infinity, infinity, keys(1, 2)).
        r1 candidate(@S, D) :- offer(@S, D), !blocked(@S, D).
        r2 mirror(@D, S) :- candidate(@S, D).
        """
        net = TOPOLOGIES["star"]()
        nodes = sorted(net.nodes)
        rng = random.Random(seed)
        context = f"negation seed={seed} (NETTRAILS_CHURN_SEED={seed})"

        baseline = NetTrailsRuntime(program, copy.deepcopy(net))
        with NetTrailsRuntime(
            program, copy.deepcopy(net), num_shards=4, shard_workers=2
        ) as sharded:
            for step in range(6):
                rows = [
                    [a, b]
                    for a in rng.sample(nodes, 3)
                    for b in rng.sample(nodes, 2)
                    if a != b
                ]
                relation = rng.choice(["offer", "blocked"])
                delete = rng.random() < 0.4
                for runtime in (baseline, sharded):
                    if delete:
                        runtime.delete_batch(relation, rows, run=True)
                    else:
                        runtime.insert_batch(relation, rows, run=True)
                where = f"{context} step={step}"
                assert store_snapshots(sharded) == store_snapshots(baseline), where
                assert provenance_fingerprint(sharded) == provenance_fingerprint(baseline), where
            relations = ["offer", "blocked", "candidate", "mirror"]
            assert global_state(sharded, relations) == global_state(baseline, relations), context

    @pytest.mark.parametrize("seed", SEEDS[:1], ids=lambda s: f"seed{s}")
    def test_path_vector_sharded_matches_baseline(
        self, seed, global_state, provenance_fingerprint, store_snapshots
    ):
        """Tuple-valued attributes (AS paths) shard and merge identically too."""
        net = TOPOLOGIES["ring"]()
        script = generate_churn_script(seed, net, steps=4)
        context = f"path_vector seed={seed} (NETTRAILS_CHURN_SEED={seed})"

        baseline = build_runtime(path_vector.program(), net)
        with build_runtime(path_vector.program(), net, num_shards=4, shard_workers=2) as sharded:
            for step, op in enumerate(script):
                apply_op(baseline, op)
                apply_op(sharded, op)
                where = f"{context} step={step} op={op}"
                assert store_snapshots(sharded) == store_snapshots(baseline), where
                assert provenance_fingerprint(sharded) == provenance_fingerprint(baseline), where
            relations = ["path", "bestPathCost", "bestPath"]
            assert global_state(sharded, relations) == global_state(baseline, relations), context
            assert lineage_answers(sharded, "bestPath") == lineage_answers(
                baseline, "bestPath"
            ), context
