"""Property-based tests for the NDlog builtin function library."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ndlog import functions

scalars = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.text(alphabet="abcdefgh", min_size=1, max_size=4),
)
paths = st.lists(scalars, min_size=0, max_size=6).map(tuple)


class TestListProperties:
    @given(paths, paths)
    def test_concat_length_is_sum_of_lengths(self, left, right):
        assert functions.f_size(functions.f_concat(left, right)) == len(left) + len(right)

    @given(paths, scalars)
    def test_member_after_append(self, path, item):
        assert functions.f_member(functions.f_append(path, item), item) == 1

    @given(paths, scalars)
    def test_prepend_makes_item_first(self, path, item):
        extended = functions.f_prepend(item, path)
        assert functions.f_first(extended) == item
        assert functions.f_size(extended) == len(path) + 1

    @given(paths)
    def test_reverse_is_involutive(self, path):
        assert functions.f_reverse(functions.f_reverse(path)) == path

    @given(st.lists(scalars, min_size=1, max_size=6).map(tuple))
    def test_first_and_last_are_members(self, path):
        assert functions.f_member(path, functions.f_first(path)) == 1
        assert functions.f_member(path, functions.f_last(path)) == 1


class TestIsExtendProperties:
    @given(st.lists(scalars, min_size=1, max_size=5).map(tuple), scalars)
    def test_prepending_always_recognised(self, route, node):
        extended = functions.f_prepend(node, route)
        assert functions.f_is_extend(extended, route, node) == 1

    @given(st.lists(scalars, min_size=1, max_size=5).map(tuple), scalars)
    def test_appending_always_recognised(self, route, node):
        extended = functions.f_append(route, node)
        assert functions.f_is_extend(extended, route, node) == 1

    @given(paths, paths, scalars)
    def test_extension_implies_length_difference_of_one(self, after, before, node):
        if functions.f_is_extend(after, before, node) == 1:
            assert len(after) == len(before) + 1
            assert node in after


class TestHashProperties:
    @given(st.lists(scalars, min_size=1, max_size=4))
    def test_sha1_deterministic(self, values):
        assert functions.f_sha1(*values) == functions.f_sha1(*values)

    @given(st.lists(scalars, min_size=1, max_size=4), st.lists(scalars, min_size=1, max_size=4))
    def test_sha1_distinguishes_different_inputs(self, a, b):
        if a != b:
            assert functions.f_sha1(*a) != functions.f_sha1(*b)
