"""Randomized equivalence harness for the columnar store and join core.

``NetTrailsRuntime(columnar=True)`` swaps the dictionary-of-sets
:class:`~repro.engine.store.TupleStore` for the interned
:class:`~repro.engine.store.ColumnarTupleStore` and lets the evaluator's
batch join probe dense-id columns instead of ``Set[Fact]`` buckets.  The
contract is that this is an *execution-strategy* change only: everything a
run can observe — per-node store snapshots (values + derivation counts),
the distributed provenance tables, provenance versions, message/event/round
counters and the workload driver's full ``deterministic_view()`` — is
bit-identical to the dict reference.  Raw derivation-id *strings* are
outside the contract for both modes: firing ids are assigned in
join-enumeration order, which no store implementation promises to preserve
(the sharded dict store already reorders them).

Three layers are pinned here:

* **store** — randomized ``apply_delta_batch`` scripts (overlapping
  insert/delete, duplicate derivations, flickering facts) applied to a
  columnar and a dict store in lockstep, with full-surface agreement
  asserted after *every* batch (satellite of the columnar refactor);
* **runtime** — the sharding suite's churn scripts replayed on
  columnar × shard-count variants against the dict unsharded baseline,
  snapshots/fingerprints/versions compared after every step;
* **workloads** — the scenario driver's ``deterministic_view()`` compared
  across modes, which folds the metrics surface (including the trace
  digest) into one equality.

Like its siblings the suite honours ``NETTRAILS_CHURN_SEED``, and CI runs
the *whole* property tree under ``NETTRAILS_COLUMNAR={0,1}``, so every
other equivalence harness exercises the columnar path too.
"""

from __future__ import annotations

import random
from contextlib import ExitStack

import pytest

from repro.engine.store import ColumnarTupleStore, TupleStore
from repro.engine.tuples import Fact
from repro.protocols import mincost, prefix_routing
from repro.workloads.driver import run_scenario
from repro.workloads.spec import ChurnPhase, QueryMixSpec, ScenarioSpec, TopologySpec
from test_property_sharding import (
    SEEDS,
    TOPOLOGIES,
    apply_op,
    build_runtime,
    generate_churn_script,
    lineage_answers,
)

#: (columnar, num_shards, shard_workers) variants compared per-step against
#: the dict unsharded baseline.  The sharded columnar legs prove interning
#: stays correct when each shard owns a disjoint slice of a relation.
COLUMNAR_VARIANTS = [
    (True, None, 0),
    (True, 2, 0),
    (True, 4, 2),
    (False, 4, 2),  # dict sharded control: anchors the baseline itself
]


def store_pair():
    return TupleStore(), ColumnarTupleStore()


def surface(store, relations, probes):
    """Everything a store client can observe, canonicalised."""
    view = {"snapshot": store.snapshot()}
    for relation in relations:
        facts = sorted(store.facts(relation), key=repr)
        view[relation] = [(fact, store.derivation_count(fact)) for fact in facts]
    view["matching"] = [
        sorted(store.matching(relation, bound), key=repr)
        for relation, bound in probes
    ]
    return view


class TestStoreDeltaEquivalence:
    """Satellite: dict and columnar stores agree after *every* delta batch."""

    RELATIONS = ("link", "path")

    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    def test_randomized_delta_batches_agree(self, seed):
        rng = random.Random(seed * 7919 + 13)
        dict_store, columnar_store = store_pair()
        nodes = [f"n{i}" for i in range(5)]
        live = []  # (fact, derivation_id) pairs believed present

        def random_fact():
            relation = rng.choice(self.RELATIONS)
            if relation == "link":
                values = (rng.choice(nodes), rng.choice(nodes), rng.randint(1, 3))
            else:
                values = (rng.choice(nodes), rng.choice(nodes), rng.choice(nodes))
            return Fact.make(relation, values)

        probes = [
            ("link", {0: nodes[0]}),
            ("link", {0: nodes[1], 1: nodes[2]}),
            ("path", {2: nodes[3]}),
            ("path", {}),
        ]
        context = f"seed={seed} (NETTRAILS_CHURN_SEED={seed})"
        for step in range(12):
            batch = []
            for _ in range(rng.randint(1, 8)):
                if live and rng.random() < 0.45:
                    # Delete something present (or re-delete: idempotence).
                    fact, derivation_id = rng.choice(live)
                    if rng.random() < 0.8:
                        live.remove((fact, derivation_id))
                    batch.append((-1, fact, derivation_id))
                else:
                    fact = random_fact()
                    derivation_id = f"d{rng.randint(0, 9)}"
                    if (fact, derivation_id) not in live:
                        live.append((fact, derivation_id))
                    batch.append((+1, fact, derivation_id))
            if live and rng.random() < 0.5:
                # Flicker: insert-then-delete inside one batch must net out.
                fact = random_fact()
                batch.append((+1, fact, "flicker"))
                batch.append((-1, fact, "flicker"))
            where = f"{context} step={step} batch={batch}"
            dict_result = dict_store.apply_delta_batch(list(batch))
            columnar_result = columnar_store.apply_delta_batch(list(batch))
            assert columnar_result == dict_result, where
            assert surface(columnar_store, self.RELATIONS, probes) == surface(
                dict_store, self.RELATIONS, probes
            ), where

    def test_probe_columns_matches_matching(self):
        """The join hot path's bucket scan enumerates exactly the facts the
        portable ``matching`` API yields (ascending intern id)."""
        _, store = store_pair()
        rng = random.Random(3)
        nodes = [f"n{i}" for i in range(4)]
        deltas = [
            (+1, Fact.make("link", (rng.choice(nodes), rng.choice(nodes), 1)), f"d{i}")
            for i in range(30)
        ]
        store.apply_delta_batch(deltas)
        for bound in ({0: "n0"}, {1: "n2"}, {0: "n1", 1: "n3"}):
            positions = tuple(sorted(bound))
            key = tuple(bound[p] for p in positions)
            via_buckets = [
                facts[fid]
                for facts, ids, _delta in store.probe_columns("link", positions, key)
                for fid in ids
            ]
            assert via_buckets == list(store.matching("link", bound))


class TestColumnarChurnEquivalence:
    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    @pytest.mark.parametrize("topology_name", sorted(TOPOLOGIES))
    def test_columnar_runs_match_dict_baseline(
        self, topology_name, seed, global_state, provenance_fingerprint, store_snapshots
    ):
        net = TOPOLOGIES[topology_name]()
        script = generate_churn_script(seed, net)
        context = f"topology={topology_name} seed={seed} (NETTRAILS_CHURN_SEED={seed})"

        with ExitStack() as stack:
            baseline = stack.enter_context(
                build_runtime(mincost.program(), net, columnar=False)
            )
            variants = {
                key: stack.enter_context(
                    build_runtime(
                        mincost.program(),
                        net,
                        columnar=key[0],
                        num_shards=key[1],
                        shard_workers=key[2],
                    )
                )
                for key in COLUMNAR_VARIANTS
            }
            for (columnar, _shards, _workers), runtime in variants.items():
                assert runtime.columnar is columnar, context

            for step, op in enumerate(script):
                apply_op(baseline, op)
                expected_snapshots = store_snapshots(baseline)
                expected_fingerprint = provenance_fingerprint(baseline)
                expected_versions = baseline.provenance.versions()
                for key, runtime in variants.items():
                    where = f"{context} columnar,K,workers={key} step={step} op={op}"
                    apply_op(runtime, op)
                    assert store_snapshots(runtime) == expected_snapshots, where
                    assert provenance_fingerprint(runtime) == expected_fingerprint, where
                    assert runtime.provenance.versions() == expected_versions, where

            expected_state = global_state(baseline, ["link", "path", "minCost"])
            expected_answers = lineage_answers(baseline, "minCost")
            for key, runtime in variants.items():
                where = f"{context} columnar,K,workers={key}"
                state = global_state(runtime, ["link", "path", "minCost"])
                assert state == expected_state, where
                assert lineage_answers(runtime, "minCost") == expected_answers, where


class TestDriverViewEquivalence:
    """The workload driver folds trace digest + every metrics counter into
    ``deterministic_view()``; one equality covers the whole surface."""

    @pytest.mark.parametrize("protocol", ["mincost", "prefix_routing"])
    def test_deterministic_view_identical_across_modes(self, protocol):
        spec = ScenarioSpec(
            name=f"columnar-equiv-{protocol}",
            topology=TopologySpec.make("grid", rows=3, columns=3),
            protocol=protocol,
            seed=7,
            churn=(ChurnPhase.make("link_flap", batches=4, flaps_per_batch=2),),
            queries=QueryMixSpec(
                relation="route" if protocol == "prefix_routing" else "path",
                queries_per_wave=2,
            ),
        )
        views = {
            columnar: run_scenario(spec.with_knobs(columnar=columnar)).deterministic_view()
            for columnar in (False, True)
        }
        assert views[True] == views[False], (
            f"columnar mode changed the driver's deterministic view for {protocol}"
        )


class TestColumnarProcessBackend:
    """Columnar evaluation inside forked workers: the drain-trace protocol
    replays worker results against the coordinator's columnar stores too."""

    def test_columnar_process_run_matches_serial_dict(
        self, global_state, store_snapshots
    ):
        net = TOPOLOGIES["as-level"]()
        script = generate_churn_script(SEEDS[0], net)
        with ExitStack() as stack:
            baseline = stack.enter_context(
                build_runtime(mincost.program(), net, columnar=False)
            )
            variant = stack.enter_context(
                build_runtime(
                    mincost.program(),
                    net,
                    columnar=True,
                    backend="process",
                    backend_workers=2,
                )
            )
            for op in script:
                apply_op(baseline, op)
                apply_op(variant, op)
                assert store_snapshots(variant) == store_snapshots(baseline)
            assert global_state(variant, ["link", "path", "minCost"]) == global_state(
                baseline, ["link", "path", "minCost"]
            )
