"""Property-based tests on whole-system provenance invariants.

These generate small random topologies and change sequences, run MINCOST with
provenance enabled, and check the structural invariants that the ExSPAN model
guarantees:

* every stored fact has exactly as many ``prov`` entries as derivations;
* every non-base ``prov`` entry points to a ``ruleExec`` entry that exists at
  the node where the rule fired, and that entry's children are tuples known
  at that node;
* distributed query answers agree with the centralized provenance graph;
* incremental maintenance after a random link failure equals a from-scratch
  run on the changed topology.
"""

from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro.core.keys import BASE_RID, vid_for
from repro.core.query import DistributedQueryEngine
from repro.engine import topology
from repro.protocols import mincost

SLOW = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def build_runtime(seed, node_count):
    net = topology.random_connected(node_count, edge_probability=0.35, seed=seed)
    return net, mincost.setup(net)


class TestProvenanceInvariants:
    @given(seed=st.integers(min_value=0, max_value=40), node_count=st.integers(min_value=3, max_value=7))
    @settings(**SLOW)
    def test_prov_entries_match_derivation_counts(self, seed, node_count):
        _net, runtime = build_runtime(seed, node_count)
        provenance = runtime.provenance
        for node_id, node in runtime.nodes.items():
            store = provenance.store(node_id)
            for fact in node.store.all_facts():
                assert len(store.prov_entries(vid_for(fact))) == node.store.derivation_count(fact)

    @given(seed=st.integers(min_value=0, max_value=40), node_count=st.integers(min_value=3, max_value=7))
    @settings(**SLOW)
    def test_prov_entries_reference_existing_rule_execs(self, seed, node_count):
        _net, runtime = build_runtime(seed, node_count)
        provenance = runtime.provenance
        for node_id in runtime.node_ids():
            for _loc, _vid, rid, rloc in provenance.store(node_id).prov_table():
                if rid == BASE_RID:
                    continue
                remote = provenance.store(rloc)
                assert remote.has_rule_exec(rid)
                for child in remote.rule_exec(rid).child_vids:
                    assert remote.knows_tuple(child)

    @given(seed=st.integers(min_value=0, max_value=40), node_count=st.integers(min_value=3, max_value=6))
    @settings(**SLOW)
    def test_distributed_counts_match_centralized_graph(self, seed, node_count):
        _net, runtime = build_runtime(seed, node_count)
        queries = DistributedQueryEngine(runtime)
        graph = runtime.provenance.build_graph()
        rows = runtime.state("minCost")[:5]
        for source, destination, cost in rows:
            vertex = graph.find_tuples("minCost", (source, destination, cost))[0]
            assert (
                queries.derivation_count("minCost", [source, destination, cost]).value
                == graph.derivation_count(vertex.vid)
            )

    @given(seed=st.integers(min_value=0, max_value=30), node_count=st.integers(min_value=4, max_value=6))
    @settings(**SLOW)
    def test_incremental_failure_equals_fresh_run(self, seed, node_count):
        net, runtime = build_runtime(seed, node_count)
        # fail the highest-degree node's first link (deterministic choice)
        edge = sorted(net.edges)[0]
        runtime.remove_link(*edge)
        runtime.run_to_quiescence()
        assert mincost.check_against_reference(runtime, net)
        fresh = mincost.setup(net)
        assert sorted(runtime.state("minCost")) == sorted(fresh.state("minCost"))
        assert runtime.provenance.table_sizes() == fresh.provenance.table_sizes()


class TestLineageProperties:
    @given(seed=st.integers(min_value=0, max_value=30), node_count=st.integers(min_value=3, max_value=6))
    @settings(**SLOW)
    def test_lineage_is_a_set_of_links_forming_a_cheap_enough_path(self, seed, node_count):
        net, runtime = build_runtime(seed, node_count)
        queries = DistributedQueryEngine(runtime)
        rows = runtime.state("minCost")[:4]
        for source, destination, cost in rows:
            lineage = queries.lineage("minCost", [source, destination, cost]).value
            assert all(ref.relation == "link" for ref in lineage)
            # every contributing link is a real edge of the topology
            for ref in lineage:
                assert net.has_edge(ref.values[0], ref.values[1])
            # the union of contributing links costs at least the shortest-path cost
            assert sum(ref.values[2] for ref in lineage) >= cost
