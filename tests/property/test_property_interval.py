"""Differential-oracle harness for the interval-indexed query path.

The interval index (:class:`repro.core.interval_index.PartitionIntervalIndex`)
answers "all supporting descendants" locally with label-table range scans and
ships one interval request per partition per wave — a completely different
execution strategy from the reference traversal, maintained incrementally by
piggybacking on the provenance engine's per-VID dirty propagation.  The
promise under test is **equivalence**: at every point of an arbitrary churn
schedule, on every execution backend and shard layout, the interval path
returns lineage and participant answers *bit-identical* to what the
reference traversal computes — both for single queries and for batched
query waves.

The harness replays the sharding suite's seeded churn scripts (honouring
``NETTRAILS_CHURN_SEED`` like its siblings) across the backend × shard
matrix.  After every churn step it computes the traversal oracle first and
the interval answers second: a runtime's per-node query handlers are
rebound by whichever :class:`DistributedQueryEngine` was constructed last,
so the two engines must run strictly in sequence, never interleaved.

Non-vacuity is asserted through the maintenance counters: the schedule must
actually build indexes, run range scans and drain incrementally queued
update ops — otherwise the equivalence would be vacuously true of a path
that never executed.
"""

from __future__ import annotations

from contextlib import ExitStack

import pytest

from repro.core.optimizations import QueryOptions
from repro.core.query import DistributedQueryEngine
from repro.protocols import mincost
from test_property_backends import BACKEND_VARIANTS, build_variant
from test_property_sharding import (
    SEEDS,
    TOPOLOGIES,
    apply_op,
    build_runtime,
    generate_churn_script,
)

#: The interval path only serves cache-free, unbounded queries; the same
#: options drive both engines so the diff isolates the execution strategy.
BASELINE = QueryOptions(use_cache=False)


def traversal_oracle(runtime, relation="minCost", limit=4):
    """Reference answers via a fresh traversal-only engine.

    Returns ``(targets, answers)`` where each answer row is the
    canonicalized ``(values, lineage refs, participants, truncated)``
    tuple the interval path must reproduce exactly.
    """
    engine = DistributedQueryEngine(runtime, use_interval_index=False)
    targets = [list(values) for values in sorted(runtime.state(relation), key=repr)[:limit]]
    answers = []
    for values in targets:
        lineage = engine.lineage(relation, values, options=BASELINE)
        participants = engine.participants(relation, values, options=BASELINE)
        answers.append(
            (
                tuple(values),
                sorted(str(ref) for ref in lineage.value),
                set(participants.value),
                lineage.truncated,
            )
        )
    return targets, answers


def interval_answers(runtime, targets, relation="minCost"):
    """The same answers through the interval engine, single-query form."""
    engine = DistributedQueryEngine(runtime, use_interval_index=True)
    answers = []
    for values in targets:
        lineage = engine.lineage(relation, values, options=BASELINE)
        participants = engine.participants(relation, values, options=BASELINE)
        answers.append(
            (
                tuple(values),
                sorted(str(ref) for ref in lineage.value),
                set(participants.value),
                lineage.truncated,
            )
        )
    return answers


def interval_batch_answers(runtime, targets, relation="minCost"):
    """The same answers through one batched interval wave per query mode."""
    engine = DistributedQueryEngine(runtime, use_interval_index=True)
    if not targets:
        return []
    lineage = engine.query_batch(relation, targets, mode="lineage", options=BASELINE)
    participants = engine.query_batch(
        relation, targets, mode="participants", options=BASELINE
    )
    return [
        (
            tuple(values),
            sorted(str(ref) for ref in lineage[index].value),
            set(participants[index].value),
            lineage[index].truncated,
        )
        for index, values in enumerate(targets)
    ]


class TestIntervalTraversalEquivalence:
    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    @pytest.mark.parametrize("topology_name", ["star", "as-level"])
    def test_interval_answers_match_traversal_across_matrix(self, topology_name, seed):
        net = TOPOLOGIES[topology_name]()
        script = generate_churn_script(seed, net)
        context = f"topology={topology_name} seed={seed} (NETTRAILS_CHURN_SEED={seed})"

        with ExitStack() as stack:
            baseline = stack.enter_context(
                build_runtime(mincost.program(), net, backend="serial")
            )
            variants = {
                (backend, shards): stack.enter_context(build_variant(net, backend, shards))
                for backend, shards in BACKEND_VARIANTS
            }

            for step, op in enumerate(script):
                apply_op(baseline, op)
                targets, expected = traversal_oracle(baseline)
                assert interval_answers(baseline, targets) == expected, (
                    f"{context} step={step} op={op} (baseline, single queries)"
                )
                assert interval_batch_answers(baseline, targets) == expected, (
                    f"{context} step={step} op={op} (baseline, batched wave)"
                )
                for key, runtime in variants.items():
                    where = f"{context} backend,shards={key} step={step} op={op}"
                    apply_op(runtime, op)
                    variant_targets, variant_expected = traversal_oracle(runtime)
                    assert variant_expected == expected, where
                    assert interval_answers(runtime, variant_targets) == expected, where
                    assert (
                        interval_batch_answers(runtime, variant_targets) == expected
                    ), where

            # Non-vacuity: the interval path must have really executed —
            # indexes built, label tables scanned, and (after the first
            # step's build) churn drained through the incremental pending
            # queues rather than falling back to rebuilds every time.
            totals = baseline.provenance.interval_totals()
            assert totals.get("builds", 0) > 0, f"{context}: no index was ever built"
            assert totals.get("range_scans", 0) > 0, f"{context}: no range scan ran"
            assert totals.get("pending_applied", 0) > 0, (
                f"{context}: churn never exercised incremental maintenance"
            )
            for key, runtime in variants.items():
                variant_totals = runtime.provenance.interval_totals()
                assert variant_totals.get("range_scans", 0) > 0, (
                    f"{context} backend,shards={key}: interval path never ran"
                )
