"""Randomized-churn soundness harness for the per-VID query cache.

The query cache (:class:`repro.core.optimizations.NodeQueryCache`) validates
entries against per-VID reachability versions maintained incrementally by
:class:`repro.core.maintenance.ProvenanceEngine`.  The promise under test is
**soundness**: a cached answer is *bit-identical* to the answer an uncached
traversal computes, at every point of an arbitrary churn schedule, on every
execution backend and shard layout.

Note what is deliberately *not* asserted: the absolute per-VID version
values.  Validity is a per-run property — an entry is served only while its
vertex's version still equals the one it was stored under, within the same
run's version map.  The absolute counters may legitimately differ between
shard layouts, because transient aggregate heads during a retraction
cascade (count-to-infinity churn) record representative derivations in
enumeration order, which regroups under sharding; all such tuples are gone
by quiescence, so the provenance tables, the answers and the cache's
behaviour at the query points stay equivalent.

This harness replays the sharding suite's seeded churn scripts on every
backend × shard-count variant, and after every churn step issues each query
three ways — cached, uncached, cached again — plus a remotely-issued cached
query (which exercises the version-carrying reply path), asserting all four
agree and match the serial baseline.  It honours ``NETTRAILS_CHURN_SEED``
like its siblings.
"""

from __future__ import annotations

from contextlib import ExitStack

import pytest

from repro.core.optimizations import QueryOptions
from repro.core.query import DistributedQueryEngine
from repro.protocols import mincost
from test_property_backends import BACKEND_VARIANTS, build_variant
from test_property_sharding import (
    SEEDS,
    TOPOLOGIES,
    apply_op,
    build_runtime,
    generate_churn_script,
)

CACHED = QueryOptions(use_cache=True)
UNCACHED = QueryOptions(use_cache=False)


def cached_query_sweep(engine, runtime, relation="minCost", limit=3):
    """Query up to *limit* derived tuples cached/uncached/cached-again/remote.

    Asserts the four answers agree (the soundness property) and returns the
    canonicalized answers so callers can compare runtimes against each other.
    """
    issuers = runtime.node_ids()
    answers = []
    for index, values in enumerate(sorted(runtime.state(relation), key=repr)[:limit]):
        cached_first = engine.lineage(relation, list(values), options=CACHED)
        uncached = engine.lineage(relation, list(values), options=UNCACHED)
        cached_again = engine.lineage(relation, list(values), options=CACHED)
        remote = engine.lineage(
            relation, list(values), options=CACHED, at=issuers[index % len(issuers)]
        )
        assert cached_first.value == uncached.value, values
        assert cached_again.value == uncached.value, values
        assert remote.value == uncached.value, values
        answers.append((values, sorted(str(ref) for ref in uncached.value)))
    return answers


class TestCacheSoundnessUnderChurn:
    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    @pytest.mark.parametrize("topology_name", ["star", "as-level"])
    def test_cached_answers_bit_identical_across_matrix(self, topology_name, seed):
        net = TOPOLOGIES[topology_name]()
        script = generate_churn_script(seed, net)
        context = f"topology={topology_name} seed={seed} (NETTRAILS_CHURN_SEED={seed})"

        with ExitStack() as stack:
            baseline = stack.enter_context(
                build_runtime(mincost.program(), net, backend="serial")
            )
            baseline_engine = DistributedQueryEngine(baseline)
            variants = {
                (backend, shards): stack.enter_context(build_variant(net, backend, shards))
                for backend, shards in BACKEND_VARIANTS
            }
            engines = {
                key: DistributedQueryEngine(runtime) for key, runtime in variants.items()
            }

            for step, op in enumerate(script):
                apply_op(baseline, op)
                expected_answers = cached_query_sweep(baseline_engine, baseline)
                for key, runtime in variants.items():
                    where = f"{context} backend,shards={key} step={step} op={op}"
                    apply_op(runtime, op)
                    assert cached_query_sweep(engines[key], runtime) == expected_answers, where

            # Non-vacuity: the schedule must actually exercise the cache on
            # every variant, not just keep missing.
            assert baseline_engine.cache_totals()["hits"] > 0, context
            for key, engine in engines.items():
                assert engine.cache_totals()["hits"] > 0, f"{context} backend,shards={key}"
