"""Snapshot serialisation property: to_json/from_json is bit-identical.

The durability layer's checkpoint files, the central log store's persistence
and the replay tooling all funnel through ``Snapshot.to_json`` /
``Snapshot.from_json``; recovery verification hashes the serialised form.
So the round trip must be *bit*-identical — not merely equal-ish — on any
state the system can reach, including the reconstructed provenance graph.

This harness drives a runtime through every churn generator in the workload
catalogue (link flaps, node fail/recover, prefix announce/withdraw, hot-hub
skew, random link churn), across unsharded and sharded stores, snapshotting
after every churn window, and asserts for each snapshot:

* ``from_json(to_json(s)).to_json() == to_json(s)`` byte for byte,
* the restored provenance graph reconstructs the same tuple/ruleExec
  counts and the same base-tuple lineage for sampled derived tuples.

Seeding follows the repo convention: fixed seeds plus an optional
``NETTRAILS_CHURN_SEED`` drawn and exported by the CI random-seed leg.
"""

from __future__ import annotations

import copy
import os
import random

import pytest

from repro.engine import topology
from repro.engine.runtime import NetTrailsRuntime
from repro.logstore import Snapshot, take_snapshot
from repro.protocols import mincost, prefix_routing
from repro.workloads.churn import GENERATORS, ChurnBatch, apply_batch


def _seeds():
    seeds = [5]
    override = os.environ.get("NETTRAILS_CHURN_SEED")
    if override is not None:
        seeds.append(int(override))
    return sorted(set(seeds))


SEEDS = _seeds()

#: Shard axis: unsharded baseline and a 4-way sharded store.
SHARD_COUNTS = [None, 4]

#: prefix_announce_withdraw mutates a ``prefix`` base relation, so it runs
#: over the prefix-routing protocol; every link-level generator runs MINCOST.
PROGRAM_FOR = {"prefix_announce_withdraw": prefix_routing.SOURCE}


def churn_script(name, seed, net, batches=4):
    mirror = copy.deepcopy(net)
    generator = GENERATORS[name]
    return [
        ChurnBatch(index=index, phase=name, ops=ops)
        for index, ops in enumerate(generator(mirror, random.Random(seed), batches))
    ]


def assert_bit_identical_round_trip(snapshot, where):
    encoded = snapshot.to_json()
    restored = Snapshot.from_json(encoded)
    assert restored.to_json() == encoded, where

    graph = snapshot.provenance_graph()
    regraph = restored.provenance_graph()
    assert regraph.tuple_count == graph.tuple_count, where
    assert regraph.rule_exec_count == graph.rule_exec_count, where
    sampled = 0
    for relation in snapshot.relations():
        for values in sorted(snapshot.relation(relation), key=repr)[:2]:
            for vertex in graph.find_tuples(relation, tuple(values)):
                expected = {v.values for v in graph.base_tuples_of(vertex.vid)}
                rebuilt = {v.values for v in regraph.base_tuples_of(vertex.vid)}
                assert rebuilt == expected, f"{where} vid={vertex.vid}"
                sampled += 1
    assert sampled > 0, where


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    @pytest.mark.parametrize(
        "num_shards", SHARD_COUNTS, ids=lambda k: f"shards{k or 0}"
    )
    @pytest.mark.parametrize("generator_name", sorted(GENERATORS))
    def test_every_generator_state_round_trips(
        self, generator_name, num_shards, seed
    ):
        net = topology.ring(6)
        source = PROGRAM_FOR.get(generator_name, mincost.SOURCE)
        script = churn_script(generator_name, seed, net)
        context = (
            f"generator={generator_name} shards={num_shards} seed={seed} "
            f"(NETTRAILS_CHURN_SEED={seed})"
        )
        knobs = {} if num_shards is None else {"num_shards": num_shards}
        with NetTrailsRuntime(source, copy.deepcopy(net), **knobs) as runtime:
            runtime.seed_links(run=True)
            assert_bit_identical_round_trip(
                take_snapshot(runtime, label="seeded"), f"{context} step=seed"
            )
            for step, batch in enumerate(script):
                apply_batch(runtime, batch, run=True)
                snapshot = take_snapshot(runtime, label=f"step-{step}")
                assert_bit_identical_round_trip(snapshot, f"{context} step={step}")

    def test_round_trip_survives_a_save_load_cycle(self, tmp_path, mincost_ring):
        """The file-level path (LogStore.save/load) preserves bit-identity too."""
        from repro.logstore import LogStore

        store = LogStore()
        snapshot = store.collect(mincost_ring, label="persisted")
        path = tmp_path / "log.json"
        store.save(path)
        loaded = LogStore.load(path)
        assert loaded.latest().to_json() == snapshot.to_json()
