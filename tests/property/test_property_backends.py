"""Randomized-churn equivalence harness for concurrent execution backends.

The execution backends (:mod:`repro.engine.backends`) promise that the
thread-pool and asyncio backends are *bit-identical* to the deterministic
serial reference on everything a run can observe: per-node store snapshots,
the distributed provenance tables, per-node provenance versions, network
message counts, simulator event/round counts and distributed query answers.

This harness reuses the sharding suite's seeded churn-script generator
(:mod:`test_property_sharding`) and replays each script on a serial-backend
baseline and on every backend × shard-count variant of the acceptance matrix
— backends {serial, thread, asyncio, process} × shards {1, 4} — asserting
equality after *every* churn step.  The process-backend legs additionally
prove the cross-process drain protocol (worker-side evaluation, trace
mirroring, stateless tag recomputation — see :mod:`repro.engine.procpool`)
observable-identical to in-process execution.  Like its sibling it honours
``NETTRAILS_CHURN_SEED`` for reproducible randomized CI runs; additionally,
the whole property suite runs under each backend in CI via the
``NETTRAILS_BACKEND`` matrix, which exercises every *other* equivalence
harness under concurrent execution too.
"""

from __future__ import annotations

from contextlib import ExitStack

import pytest

from repro.engine.backends import (
    AsyncioBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
)
from test_property_sharding import (
    SEEDS,
    TOPOLOGIES,
    apply_op,
    build_runtime,
    generate_churn_script,
    lineage_answers,
)
from repro.protocols import mincost

#: The acceptance matrix: every backend × shard count compared per-step
#: against the serial unsharded baseline.  Thread/asyncio/process variants
#: use two workers so waves genuinely overlap; the sharded variants stack
#: store sharding on top of backend concurrency (nested parallelism — and,
#: for the process backend, shard threads inside each forked worker).
BACKEND_VARIANTS = [
    ("serial", 1),
    ("serial", 4),
    ("thread", 1),
    ("thread", 4),
    ("asyncio", 1),
    ("asyncio", 4),
    ("process", 1),
    ("process", 4),
]

BACKEND_TYPES = {
    "serial": SerialBackend,
    "thread": ThreadPoolBackend,
    "asyncio": AsyncioBackend,
    "process": ProcessPoolBackend,
}


def build_variant(net, backend, num_shards, workers=2):
    kwargs = {"backend": backend, "backend_workers": None if backend == "serial" else workers}
    if num_shards > 1:
        kwargs.update(num_shards=num_shards, shard_workers=2)
    return build_runtime(mincost.program(), net, **kwargs)


def observable_counts(runtime):
    """The wire/engine counters that must not depend on the backend."""
    return {
        "messages": runtime.message_stats().messages,
        "by_category": runtime.message_stats().by_category,
        "events": runtime.simulator.processed_events,
        "rounds": runtime.simulator.rounds,
    }


class TestBackendChurnEquivalence:
    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    @pytest.mark.parametrize("topology_name", sorted(TOPOLOGIES))
    def test_backends_match_serial_reference(
        self, topology_name, seed, global_state, provenance_fingerprint, store_snapshots
    ):
        net = TOPOLOGIES[topology_name]()
        script = generate_churn_script(seed, net)
        context = f"topology={topology_name} seed={seed} (NETTRAILS_CHURN_SEED={seed})"

        with ExitStack() as stack:
            baseline = stack.enter_context(build_runtime(mincost.program(), net, backend="serial"))
            variants = {
                (backend, shards): stack.enter_context(build_variant(net, backend, shards))
                for backend, shards in BACKEND_VARIANTS
            }
            for (backend, shards), runtime in variants.items():
                assert isinstance(runtime.backend, BACKEND_TYPES[backend]), context

            for step, op in enumerate(script):
                apply_op(baseline, op)
                expected_snapshots = store_snapshots(baseline)
                expected_fingerprint = provenance_fingerprint(baseline)
                expected_versions = baseline.provenance.versions()
                expected_counts = observable_counts(baseline)
                for key, runtime in variants.items():
                    where = f"{context} backend,shards={key} step={step} op={op}"
                    apply_op(runtime, op)
                    assert store_snapshots(runtime) == expected_snapshots, where
                    assert provenance_fingerprint(runtime) == expected_fingerprint, where
                    assert runtime.provenance.versions() == expected_versions, where
                    assert observable_counts(runtime) == expected_counts, where

            expected_state = global_state(baseline, ["link", "path", "minCost"])
            expected_answers = lineage_answers(baseline, "minCost")
            for key, runtime in variants.items():
                where = f"{context} backend,shards={key}"
                assert global_state(runtime, ["link", "path", "minCost"]) == expected_state, where
                assert lineage_answers(runtime, "minCost") == expected_answers, where

    @pytest.mark.parametrize("seed", SEEDS[:1], ids=lambda s: f"seed{s}")
    def test_query_traffic_identical_across_backends(self, seed):
        """Provenance-query traversal costs (messages, rounds, nodes visited)
        are part of the paper's claims, so they must be backend-invariant
        too, not just the answers."""
        net = TOPOLOGIES["as-level"]()

        def query_stats(runtime):
            from repro.core.query import DistributedQueryEngine

            engine = DistributedQueryEngine(runtime)
            rows = sorted(runtime.state("minCost"), key=repr)[:3]
            stats = []
            for values in rows:
                result = engine.lineage("minCost", list(values))
                stats.append(
                    (
                        values,
                        sorted(str(ref) for ref in result.value),
                        result.stats.messages,
                        result.stats.rounds,
                        result.stats.nodes_visited,
                    )
                )
            return stats

        with ExitStack() as stack:
            serial = stack.enter_context(build_runtime(mincost.program(), net, backend="serial"))
            expected = query_stats(serial)
            for backend in ("thread", "asyncio", "process"):
                runtime = stack.enter_context(
                    build_runtime(mincost.program(), net, backend=backend, backend_workers=4)
                )
                assert query_stats(runtime) == expected, f"backend={backend} seed={seed}"


@pytest.mark.slow
class TestProcessWorkerSweep:
    """Exhaustive process-backend leg: every worker count must be identical.

    The fast matrix above pins the process backend at two workers; this
    slow-marked sweep (run by the CI property matrix, excluded from tier-1
    by the ``-m "not slow"`` addopts) replays the full churn scripts at
    worker counts {1, 2, 4} so the node→worker assignment, the per-worker
    request serialization and the trace merge are each exercised at a
    different process-parallelism shape.
    """

    @pytest.mark.parametrize("workers", [1, 2, 4], ids=lambda w: f"workers{w}")
    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    def test_worker_counts_identical(
        self, workers, seed, global_state, provenance_fingerprint, store_snapshots
    ):
        net = TOPOLOGIES["as-level"]()
        script = generate_churn_script(seed, net)
        context = f"workers={workers} seed={seed} (NETTRAILS_CHURN_SEED={seed})"

        with ExitStack() as stack:
            baseline = stack.enter_context(build_runtime(mincost.program(), net, backend="serial"))
            variant = stack.enter_context(build_variant(net, "process", 4, workers=workers))
            for step, op in enumerate(script):
                apply_op(baseline, op)
                apply_op(variant, op)
                where = f"{context} step={step} op={op}"
                assert store_snapshots(variant) == store_snapshots(baseline), where
                assert provenance_fingerprint(variant) == provenance_fingerprint(baseline), where
                assert variant.provenance.versions() == baseline.provenance.versions(), where
                assert observable_counts(variant) == observable_counts(baseline), where
            expected_state = global_state(baseline, ["link", "path", "minCost"])
            assert global_state(variant, ["link", "path", "minCost"]) == expected_state, context
            assert lineage_answers(variant, "minCost") == lineage_answers(baseline, "minCost"), context
