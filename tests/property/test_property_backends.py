"""Randomized-churn equivalence harness for concurrent execution backends.

The execution backends (:mod:`repro.engine.backends`) promise that the
thread-pool and asyncio backends are *bit-identical* to the deterministic
serial reference on everything a run can observe: per-node store snapshots,
the distributed provenance tables, per-node provenance versions, network
message counts, simulator event/round counts and distributed query answers.

This harness reuses the sharding suite's seeded churn-script generator
(:mod:`test_property_sharding`) and replays each script on a serial-backend
baseline and on every backend × shard-count variant of the acceptance matrix
— backends {serial, thread, asyncio} × shards {1, 4} — asserting equality
after *every* churn step.  Like its sibling it honours
``NETTRAILS_CHURN_SEED`` for reproducible randomized CI runs; additionally,
the whole property suite runs under each backend in CI via the
``NETTRAILS_BACKEND`` matrix, which exercises every *other* equivalence
harness under concurrent execution too.
"""

from __future__ import annotations

from contextlib import ExitStack

import pytest

from repro.engine.backends import AsyncioBackend, SerialBackend, ThreadPoolBackend
from test_property_sharding import (
    SEEDS,
    TOPOLOGIES,
    apply_op,
    build_runtime,
    generate_churn_script,
    lineage_answers,
)
from repro.protocols import mincost

#: The acceptance matrix: every backend × shard count compared per-step
#: against the serial unsharded baseline.  Thread/asyncio variants use two
#: workers so waves genuinely overlap; the sharded variants stack store
#: sharding on top of backend concurrency (nested parallelism).
BACKEND_VARIANTS = [
    ("serial", 1),
    ("serial", 4),
    ("thread", 1),
    ("thread", 4),
    ("asyncio", 1),
    ("asyncio", 4),
]

BACKEND_TYPES = {
    "serial": SerialBackend,
    "thread": ThreadPoolBackend,
    "asyncio": AsyncioBackend,
}


def build_variant(net, backend, num_shards):
    kwargs = {"backend": backend, "backend_workers": None if backend == "serial" else 2}
    if num_shards > 1:
        kwargs.update(num_shards=num_shards, shard_workers=2)
    return build_runtime(mincost.program(), net, **kwargs)


def observable_counts(runtime):
    """The wire/engine counters that must not depend on the backend."""
    return {
        "messages": runtime.message_stats().messages,
        "by_category": runtime.message_stats().by_category,
        "events": runtime.simulator.processed_events,
        "rounds": runtime.simulator.rounds,
    }


class TestBackendChurnEquivalence:
    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    @pytest.mark.parametrize("topology_name", sorted(TOPOLOGIES))
    def test_backends_match_serial_reference(
        self, topology_name, seed, global_state, provenance_fingerprint, store_snapshots
    ):
        net = TOPOLOGIES[topology_name]()
        script = generate_churn_script(seed, net)
        context = f"topology={topology_name} seed={seed} (NETTRAILS_CHURN_SEED={seed})"

        with ExitStack() as stack:
            baseline = stack.enter_context(build_runtime(mincost.program(), net, backend="serial"))
            variants = {
                (backend, shards): stack.enter_context(build_variant(net, backend, shards))
                for backend, shards in BACKEND_VARIANTS
            }
            for (backend, shards), runtime in variants.items():
                assert isinstance(runtime.backend, BACKEND_TYPES[backend]), context

            for step, op in enumerate(script):
                apply_op(baseline, op)
                expected_snapshots = store_snapshots(baseline)
                expected_fingerprint = provenance_fingerprint(baseline)
                expected_versions = baseline.provenance.versions()
                expected_counts = observable_counts(baseline)
                for key, runtime in variants.items():
                    where = f"{context} backend,shards={key} step={step} op={op}"
                    apply_op(runtime, op)
                    assert store_snapshots(runtime) == expected_snapshots, where
                    assert provenance_fingerprint(runtime) == expected_fingerprint, where
                    assert runtime.provenance.versions() == expected_versions, where
                    assert observable_counts(runtime) == expected_counts, where

            expected_state = global_state(baseline, ["link", "path", "minCost"])
            expected_answers = lineage_answers(baseline, "minCost")
            for key, runtime in variants.items():
                where = f"{context} backend,shards={key}"
                assert global_state(runtime, ["link", "path", "minCost"]) == expected_state, where
                assert lineage_answers(runtime, "minCost") == expected_answers, where

    @pytest.mark.parametrize("seed", SEEDS[:1], ids=lambda s: f"seed{s}")
    def test_query_traffic_identical_across_backends(self, seed):
        """Provenance-query traversal costs (messages, rounds, nodes visited)
        are part of the paper's claims, so they must be backend-invariant
        too, not just the answers."""
        net = TOPOLOGIES["as-level"]()

        def query_stats(runtime):
            from repro.core.query import DistributedQueryEngine

            engine = DistributedQueryEngine(runtime)
            rows = sorted(runtime.state("minCost"), key=repr)[:3]
            stats = []
            for values in rows:
                result = engine.lineage("minCost", list(values))
                stats.append(
                    (
                        values,
                        sorted(str(ref) for ref in result.value),
                        result.stats.messages,
                        result.stats.rounds,
                        result.stats.nodes_visited,
                    )
                )
            return stats

        with ExitStack() as stack:
            serial = stack.enter_context(build_runtime(mincost.program(), net, backend="serial"))
            expected = query_stats(serial)
            for backend in ("thread", "asyncio"):
                runtime = stack.enter_context(
                    build_runtime(mincost.program(), net, backend=backend, backend_workers=4)
                )
                assert query_stats(runtime) == expected, f"backend={backend} seed={seed}"
