"""Property-based tests for the tuple store's derivation-counting invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keys import vid_for
from repro.engine.store import TupleStore
from repro.engine.tuples import Fact

fact_strategy = st.builds(
    lambda relation, values: Fact.make(relation, values),
    st.sampled_from(["link", "path", "minCost"]),
    st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=3),
)

operation = st.tuples(
    st.sampled_from(["add", "remove"]),
    fact_strategy,
    st.sampled_from(["d1", "d2", "d3"]),
)


class TestStoreInvariants:
    @given(st.lists(operation, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_fact_present_iff_it_has_derivations(self, operations):
        store = TupleStore()
        reference = {}
        for action, fact, derivation in operations:
            if action == "add":
                store.add_derivation(fact, derivation)
                reference.setdefault(fact, set()).add(derivation)
            else:
                store.remove_derivation(fact, derivation)
                reference.get(fact, set()).discard(derivation)
        for fact, derivations in reference.items():
            assert store.contains(fact) == bool(derivations)
            assert store.derivations(fact) == derivations
        assert store.count() == sum(1 for d in reference.values() if d)

    @given(st.lists(operation, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_index_scans_agree_with_full_scans(self, operations):
        store = TupleStore()
        # Force index creation early so that it is maintained through the whole run.
        list(store.matching("link", {0: 0}))
        for action, fact, derivation in operations:
            if action == "add":
                store.add_derivation(fact, derivation)
            else:
                store.remove_derivation(fact, derivation)
        for value in range(4):
            indexed = set(store.matching("link", {0: value}))
            scanned = {fact for fact in store.facts("link") if fact.values[0] == value}
            assert indexed == scanned


class TestVidProperties:
    @given(st.lists(fact_strategy, min_size=2, max_size=20, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_vids_are_injective_on_distinct_facts(self, facts):
        vids = {vid_for(fact) for fact in facts}
        assert len(vids) == len(set(facts))

    @given(fact_strategy)
    def test_vid_stable_across_calls(self, fact):
        assert vid_for(fact) == vid_for(Fact.make(fact.relation, list(fact.values)))
