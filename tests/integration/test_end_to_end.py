"""End-to-end integration tests combining multiple subsystems."""

import pytest

from repro import DistributedQueryEngine, QueryOptions
from repro.analysis import explain_derivation, root_causes
from repro.core.keys import vid_for
from repro.engine import topology
from repro.engine.tuples import Fact
from repro.legacy.quagga import QuaggaDeployment
from repro.logstore import LogStore, ReplaySession
from repro.protocols import mincost, path_vector
from repro.viz import exploration_views, render_ascii_tree, HypertreeLayout


class TestDeclarativeNetworkPipeline:
    """Use case 1 of the demonstration: declarative networks end to end."""

    def test_mincost_run_query_snapshot_replay_and_visualize(self, ring5):
        # 1. run the protocol with provenance maintenance
        runtime = mincost.setup(ring5)
        assert mincost.check_against_reference(runtime, ring5)

        # 2. query provenance through the distributed query engine
        queries = DistributedQueryEngine(runtime)
        lineage = queries.lineage("minCost", ["n0", "n2", 2.0])
        assert len(lineage.value) == 2

        # 3. capture snapshots around a topology change and replay them
        log = LogStore()
        log.collect(runtime, label="before")
        runtime.remove_link("n0", "n1")
        runtime.run_to_quiescence()
        log.collect(runtime, label="after")
        session = ReplaySession(log)
        diff = session.step()
        assert diff.removed_count() > 0

        # 4. visualize the provenance captured in the snapshot
        graph = session.provenance_graph()
        views = exploration_views(graph, "minCost", ("n0", "n1", 4.0))
        assert "minCost" in views["table"]
        root = vid_for(Fact.make("minCost", ["n0", "n1", 4.0]))
        assert render_ascii_tree(graph, root)
        layout = HypertreeLayout().compute(graph, root)
        assert layout

    def test_provenance_query_after_topology_change_reflects_new_derivations(self, ring5):
        runtime = mincost.setup(ring5)
        queries = DistributedQueryEngine(runtime)
        before = queries.lineage("minCost", ["n0", "n1", 1.0])
        assert {r.values for r in before.value} == {("n0", "n1", 1.0)}
        runtime.remove_link("n0", "n1")
        runtime.run_to_quiescence()
        after = queries.lineage("minCost", ["n0", "n1", 4.0])
        # the new lineage is the long way round the ring: four links
        assert len(after.value) == 4

    def test_path_vector_provenance_matches_selected_path(self, line4):
        runtime = path_vector.setup(line4)
        queries = DistributedQueryEngine(runtime)
        paths = path_vector.best_paths(runtime)
        path = paths[("n0", "n3")]
        result = queries.lineage("bestPath", ["n0", "n3", path, 3.0])
        link_endpoints = {(r.values[0], r.values[1]) for r in result.value}
        assert link_endpoints == set(zip(path, path[1:]))


class TestLegacyPipeline:
    """Use case 2: the Quagga/BGP legacy application."""

    def test_bgp_trace_provenance_and_analysis(self):
        deployment = QuaggaDeployment(tier1_count=2, tier2_per_tier1=2, stubs_per_tier2=1, seed=3)
        deployment.play_generated_trace(seed=7, flap_probability=0.5)
        prefix = deployment.events_played[0].prefix
        origin = deployment.events_played[0].asn
        entries = deployment.route_entries(prefix)
        if not entries:
            pytest.skip("the trace withdrew the prefix at the end; nothing to analyse")

        # provenance of every installed route traces back to the origin AS
        for asn in entries:
            lineage = deployment.derivation_of_route(asn, prefix)
            origins = {ref.location for ref in lineage.value}
            assert origins == {f"as{origin}"}

        # the offline graph supports the same analysis
        graph = deployment.provenance.build_graph()
        far = max(entries, key=lambda asn: len(entries[asn]))
        entry = deployment.proxy.current_route_entry(far, prefix)
        explanation = explain_derivation(graph, "routeEntry", list(entry.values))
        assert "br2" in explanation  # the maybe rule that explains RIB entries
        causes = root_causes(graph, "routeEntry", list(entry.values))
        assert all(vertex.relation == "outputRoute" for vertex in causes)

    def test_same_query_engine_serves_declarative_and_legacy_systems(self, ring5):
        # The unified framework claim: the identical query API works over both.
        declarative = mincost.setup(ring5)
        declarative_queries = DistributedQueryEngine(declarative)
        declarative_result = declarative_queries.lineage("minCost", ["n0", "n1", 1.0])

        deployment = QuaggaDeployment(tier1_count=2, tier2_per_tier1=1, stubs_per_tier2=1, seed=0)
        deployment.play_generated_trace(seed=1, flap_probability=0.0)
        prefix = deployment.events_played[0].prefix
        entries = deployment.route_entries(prefix)
        asn = sorted(entries)[0]
        legacy_result = deployment.derivation_of_route(asn, prefix)

        assert type(declarative_result) is type(legacy_result)
        assert declarative_result.mode == legacy_result.mode == "lineage"


class TestOptimizationBehaviour:
    def test_cached_queries_pay_once(self, small_random):
        runtime = mincost.setup(small_random)
        queries = DistributedQueryEngine(runtime)
        options = QueryOptions(use_cache=True)
        rows = [row for row in runtime.state("minCost") if row[2] >= 2]
        total_first = 0
        total_second = 0
        for row in rows[:5]:
            total_first += queries.lineage("minCost", list(row), options=options).stats.messages
            total_second += queries.lineage("minCost", list(row), options=options).stats.messages
        assert total_second < total_first
