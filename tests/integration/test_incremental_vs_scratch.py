"""Incremental maintenance must equal from-scratch recomputation.

This is the central correctness claim behind NetTrails: "NetTrails correctly
captures and maintains provenance, as network state is incrementally
recomputed as the underlying network topology changes."  For a sequence of
topology changes we compare, after every change, both the protocol state and
the provenance tables of the incrementally-maintained runtime against a fresh
runtime built from scratch on the changed topology.
"""

import copy
import random

import pytest

from repro.engine import topology
from repro.engine.runtime import NetTrailsRuntime
from repro.protocols import distance_vector, mincost, path_vector


# The equivalence canonicalisers (provenance_fingerprint, global_state,
# store_snapshots) live in tests/conftest.py and are requested as fixtures;
# the sharding equivalence harness (tests/property/test_property_sharding.py)
# shares the same definitions.


def fresh_runtime(module, net):
    return module.setup(copy.deepcopy(net))


CHANGE_SCRIPTS = {
    "remove-one": [("remove", 0)],
    "remove-two-add-one": [("remove", 0), ("remove", 1), ("add", 0)],
    "add-shortcut": [("add_new", ("n0", "n5", 0.5))],
}


def apply_script(runtime, net, script):
    """Apply a change script; mirror the changes into `net` as the reference."""
    removable = sorted(net.edges)
    removed = []
    for action, argument in script:
        if action == "remove":
            a, b = removable[argument]
            cost = net.cost(a, b)
            runtime.remove_link(a, b)
            removed.append((a, b, cost))
        elif action == "add":
            a, b, cost = removed[argument]
            runtime.add_link(a, b, cost)
        elif action == "add_new":
            a, b, cost = argument
            runtime.add_link(a, b, cost)
        runtime.run_to_quiescence()


class TestIncrementalEqualsScratch:
    @pytest.mark.parametrize("script_name", sorted(CHANGE_SCRIPTS))
    @pytest.mark.parametrize(
        "module,relations",
        [
            (mincost, ["path", "minCost"]),
            (path_vector, ["path", "bestPathCost", "bestPath"]),
            (distance_vector, ["hop", "bestHop"]),
        ],
        ids=["mincost", "path_vector", "distance_vector"],
    )
    def test_state_and_provenance_match_fresh_run(
        self, module, relations, script_name, global_state, provenance_fingerprint
    ):
        net = topology.random_connected(8, edge_probability=0.35, seed=13)
        incremental = module.setup(net)
        apply_script(incremental, net, CHANGE_SCRIPTS[script_name])

        scratch = fresh_runtime(module, net)

        assert global_state(incremental, relations) == global_state(scratch, relations)
        assert provenance_fingerprint(incremental) == provenance_fingerprint(scratch)

class TestBatchEqualsSingleton:
    """Batched delta evaluation must reach the same state as per-delta replay.

    These tests pin down the correctness contract of the batch-first
    execution path (:meth:`LocalEvaluator.on_batch`, per-destination
    :class:`TupleDeltaBatch` messages, per-batch provenance updates): it may
    reorder and consolidate work arbitrarily, but the final protocol state
    *and* the distributed provenance tables must be indistinguishable from
    the historical one-delta-at-a-time mode.
    """

    @pytest.mark.parametrize("script_name", sorted(CHANGE_SCRIPTS))
    @pytest.mark.parametrize(
        "module,relations",
        [
            (mincost, ["path", "minCost"]),
            (path_vector, ["path", "bestPathCost", "bestPath"]),
            (distance_vector, ["hop", "bestHop"]),
        ],
        ids=["mincost", "path_vector", "distance_vector"],
    )
    def test_batched_equals_per_delta_runtime(
        self, module, relations, script_name, global_state, provenance_fingerprint
    ):
        def build(batch_deltas):
            net = topology.random_connected(8, edge_probability=0.35, seed=13)
            runtime = NetTrailsRuntime(module.program(), net, batch_deltas=batch_deltas)
            runtime.seed_links(run=True)
            apply_script(runtime, net, CHANGE_SCRIPTS[script_name])
            return runtime

        batched = build(True)
        per_delta = build(False)
        assert global_state(batched, relations) == global_state(per_delta, relations)
        assert provenance_fingerprint(batched) == provenance_fingerprint(per_delta)
        # Batching is the whole point: the same convergence must cost fewer
        # network messages and simulator events.
        assert batched.message_stats().messages <= per_delta.message_stats().messages
        assert batched.simulator.processed_events <= per_delta.simulator.processed_events

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_random_bulk_batches_equal_singleton_replay(self, seed, provenance_fingerprint):
        """Property-style: random insert/delete batches vs one-at-a-time."""
        rng = random.Random(seed)
        net = topology.ring(6)
        batched = NetTrailsRuntime(mincost.program(), copy.deepcopy(net))
        singleton = NetTrailsRuntime(mincost.program(), copy.deepcopy(net))
        for runtime in (batched, singleton):
            runtime.seed_links(run=True)

        nodes = sorted(net.nodes)
        extra = [
            [a, b, float(rng.randint(1, 4))]
            for a in nodes
            for b in rng.sample(nodes, 3)
            if a != b
        ]
        live = []
        for _ in range(6):
            inserts = [extra[rng.randrange(len(extra))] for _ in range(rng.randint(1, 5))]
            deletes = [live.pop(rng.randrange(len(live))) for _ in range(min(len(live), rng.randint(0, 3)))]
            deletes = [row for row in deletes if row not in inserts]
            live.extend(inserts)

            batched.delete_batch("link", deletes)
            batched.insert_batch("link", inserts)
            batched.run_to_quiescence()

            for row in deletes:
                singleton.delete("link", row)
            for row in inserts:
                singleton.insert("link", row)
            singleton.run_to_quiescence()

            for relation in ("link", "path", "minCost"):
                assert batched.state(relation) == singleton.state(relation)
            assert provenance_fingerprint(batched) == provenance_fingerprint(singleton)


class TestInsertDeleteRoundTrip:
    def test_insert_then_delete_returns_to_original(self, global_state, provenance_fingerprint):
        net = topology.ring(6)
        runtime = mincost.setup(net)
        original_state = global_state(runtime, ["path", "minCost"])
        original_provenance = provenance_fingerprint(runtime)
        runtime.add_link("n0", "n3", 1.0)
        runtime.run_to_quiescence()
        assert global_state(runtime, ["minCost"]) != {"minCost": original_state["minCost"]}
        runtime.remove_link("n0", "n3")
        runtime.run_to_quiescence()
        assert global_state(runtime, ["path", "minCost"]) == original_state
        assert provenance_fingerprint(runtime) == original_provenance
