"""One parameterized parity suite for every ``NETTRAILS_*`` environment hook.

The engine exposes seven construction-time knobs through the environment —
``NETTRAILS_BACKEND``, ``NETTRAILS_BACKEND_WORKERS``,
``NETTRAILS_QUERY_CACHE_CAPACITY``, ``NETTRAILS_COLUMNAR``,
``NETTRAILS_INTERVAL_INDEX``, ``NETTRAILS_OBSERVABILITY`` and
``NETTRAILS_DURABLE_DIR`` — and they all promise the same contract:

* unset or empty/whitespace value ⇒ the built-in default, silently;
* a well-formed value ⇒ applied to every runtime built afterwards;
* a malformed value ⇒ a loud :class:`~repro.errors.EngineError` at runtime
  construction, never a silent fallback;
* an explicit constructor argument always beats the hook.

Keeping the matrix in one table means a new hook (like the durable
directory) cannot ship with divergent rejection semantics unnoticed.
"""

from __future__ import annotations

import os

import pytest

from repro.engine import topology
from repro.engine.runtime import (
    CACHE_CAPACITY_ENV_VAR,
    COLUMNAR_ENV_VAR,
    DURABLE_DIR_ENV_VAR,
    INTERVAL_INDEX_ENV_VAR,
    OBSERVABILITY_ENV_VAR,
    NetTrailsRuntime,
)
from repro.engine.backends import (
    BACKEND_ENV_VAR,
    BACKEND_WORKERS_ENV_VAR,
    default_worker_count,
)
from repro.errors import EngineError
from repro.protocols import mincost


def build_runtime(**kwargs):
    return NetTrailsRuntime(mincost.SOURCE, topology.line(3), **kwargs)


#: hook -> (a valid value, an observation of the applied default/value,
#: malformed values that must raise at construction, and extra runtime
#: kwargs some hooks need to be observable — e.g. the worker-count hook is
#: only visible on a concurrent backend, since serial pins workers to 1)
HOOKS = {
    BACKEND_ENV_VAR: {
        "valid": "thread",
        "observe": lambda runtime: runtime.backend.name,
        "expect": "thread",
        "default": "serial",
        "malformed": ["bogus-backend"],
    },
    BACKEND_WORKERS_ENV_VAR: {
        "valid": "3",
        "observe": lambda runtime: runtime.backend.workers,
        "expect": 3,
        "default": default_worker_count(),
        "malformed": ["lots", "0", "-2", "2.5"],
        "kwargs": {"backend": "thread"},
    },
    CACHE_CAPACITY_ENV_VAR: {
        "valid": "17",
        "observe": lambda runtime: runtime.query_cache_capacity,
        "expect": 17,
        "default": None,
        "malformed": ["many", "-3", "1.5"],
    },
    INTERVAL_INDEX_ENV_VAR: {
        "valid": "yes",
        "observe": lambda runtime: runtime.use_interval_index,
        "expect": True,
        "default": False,
        "malformed": ["maybe", "2"],
    },
    COLUMNAR_ENV_VAR: {
        "valid": "on",
        "observe": lambda runtime: runtime.columnar,
        "expect": True,
        "default": False,
        "malformed": ["columnar-ish", "2"],
    },
    OBSERVABILITY_ENV_VAR: {
        "valid": "on",
        "observe": lambda runtime: runtime.obs is not None,
        "expect": True,
        "default": False,
        "malformed": ["observably", "2"],
    },
}


def hook_cases(field):
    for var, spec in HOOKS.items():
        yield pytest.param(var, spec, id=var)


@pytest.fixture(autouse=True)
def clean_hooks(monkeypatch):
    """Every test starts with no NETTRAILS_* hooks exported."""
    for var in (
        BACKEND_ENV_VAR,
        BACKEND_WORKERS_ENV_VAR,
        CACHE_CAPACITY_ENV_VAR,
        COLUMNAR_ENV_VAR,
        INTERVAL_INDEX_ENV_VAR,
        OBSERVABILITY_ENV_VAR,
        DURABLE_DIR_ENV_VAR,
    ):
        monkeypatch.delenv(var, raising=False)


class TestHookParity:
    @pytest.mark.parametrize("var,spec", hook_cases("valid"))
    def test_valid_value_applies(self, monkeypatch, var, spec):
        monkeypatch.setenv(var, spec["valid"])
        with build_runtime(**spec.get("kwargs", {})) as runtime:
            assert spec["observe"](runtime) == spec["expect"]

    @pytest.mark.parametrize("var,spec", hook_cases("default"))
    @pytest.mark.parametrize("raw", [None, "", "   "], ids=["unset", "empty", "blank"])
    def test_unset_and_empty_mean_default(self, monkeypatch, var, spec, raw):
        if raw is not None:
            monkeypatch.setenv(var, raw)
        with build_runtime(**spec.get("kwargs", {})) as runtime:
            assert spec["observe"](runtime) == spec["default"]

    @pytest.mark.parametrize("var,spec", hook_cases("malformed"))
    def test_malformed_value_raises_at_construction(self, monkeypatch, var, spec):
        for bad in spec["malformed"]:
            monkeypatch.setenv(var, bad)
            with pytest.raises(EngineError):
                build_runtime(**spec.get("kwargs", {}))

    def test_explicit_argument_beats_hook(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "thread")
        monkeypatch.setenv(BACKEND_WORKERS_ENV_VAR, "7")
        monkeypatch.setenv(CACHE_CAPACITY_ENV_VAR, "17")
        monkeypatch.setenv(INTERVAL_INDEX_ENV_VAR, "1")
        monkeypatch.setenv(COLUMNAR_ENV_VAR, "1")
        monkeypatch.setenv(OBSERVABILITY_ENV_VAR, "1")
        with build_runtime(
            backend="serial",
            query_cache_capacity=5,
            use_interval_index=False,
            columnar=False,
            observability=False,
        ) as runtime:
            assert runtime.backend.name == "serial"
            assert runtime.query_cache_capacity == 5
            assert runtime.use_interval_index is False
            assert runtime.columnar is False
            assert runtime.obs is None

    def test_explicit_backend_workers_beats_hook(self, monkeypatch):
        monkeypatch.setenv(BACKEND_WORKERS_ENV_VAR, "7")
        with build_runtime(backend="thread", backend_workers=2) as runtime:
            assert runtime.backend.workers == 2

    def test_process_backend_via_hook(self, monkeypatch):
        """NETTRAILS_BACKEND=process builds (and runs) the process backend,
        and NETTRAILS_BACKEND_WORKERS sizes its forked worker pool."""
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        monkeypatch.setenv(BACKEND_WORKERS_ENV_VAR, "2")
        with build_runtime() as runtime:
            assert runtime.backend.name == "process"
            assert runtime.backend.workers == 2
            runtime.seed_links(run=True)
            assert runtime.state("minCost")


class TestDurableDirHook:
    """NETTRAILS_DURABLE_DIR follows the same parity contract; its "applied"
    observation is a live WAL, and its malformed axis is path-shaped."""

    def test_valid_path_turns_on_durable_mode(self, monkeypatch, tmp_path):
        target = tmp_path / "durable"
        monkeypatch.setenv(DURABLE_DIR_ENV_VAR, str(target))
        with build_runtime(wal_fsync=False) as runtime:
            assert runtime.durable_dir == str(target)
            assert (target / "wal.log").exists()

    @pytest.mark.parametrize("raw", [None, "", "   "], ids=["unset", "empty", "blank"])
    def test_unset_and_empty_mean_non_durable(self, monkeypatch, raw):
        if raw is not None:
            monkeypatch.setenv(DURABLE_DIR_ENV_VAR, raw)
        with build_runtime() as runtime:
            assert runtime.durable_dir is None

    def test_existing_non_directory_raises(self, monkeypatch, tmp_path):
        collision = tmp_path / "a-file"
        collision.write_text("not a directory")
        monkeypatch.setenv(DURABLE_DIR_ENV_VAR, str(collision))
        with pytest.raises(EngineError, match="not a directory"):
            build_runtime()

    def test_uncreatable_path_raises(self, monkeypatch, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        monkeypatch.setenv(DURABLE_DIR_ENV_VAR, str(blocker / "nested"))
        with pytest.raises(EngineError, match="cannot create durable_dir"):
            build_runtime()

    def test_unwritable_directory_raises(self, monkeypatch, tmp_path):
        # os.access reports writable for root whatever the mode bits say, so
        # the permission probe itself is patched to simulate a read-only dir.
        monkeypatch.setenv(DURABLE_DIR_ENV_VAR, str(tmp_path))
        real_access = os.access
        monkeypatch.setattr(
            "repro.engine.runtime.os.access",
            lambda path, mode: False if mode == os.W_OK else real_access(path, mode),
        )
        with pytest.raises(EngineError, match="not writable"):
            build_runtime()

    def test_explicit_argument_beats_hook(self, monkeypatch, tmp_path):
        from_env = tmp_path / "from-env"
        explicit = tmp_path / "explicit"
        monkeypatch.setenv(DURABLE_DIR_ENV_VAR, str(from_env))
        with build_runtime(durable_dir=explicit, wal_fsync=False) as runtime:
            assert runtime.durable_dir == str(explicit)
            assert (explicit / "wal.log").exists()
            assert not from_env.exists()
