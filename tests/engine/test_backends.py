"""Execution-backend unit tests: resolution, wave semantics and edge cases.

The randomized equivalence sweep lives in
``tests/property/test_property_backends.py``; this module pins the
deterministic corner cases of the scheduling contract:

* backend resolution (names, env hook, worker plumbing, error paths),
* wave partitioning in the simulator (serialization keys, barrier events,
  deferred side-effect merge order),
* degenerate topologies (a single node — one serialization domain),
* zero-delay coalesced drains landing on one node,
* query traversal interleaved with in-flight churn,
* the runtime context manager releasing backend workers.
"""

from __future__ import annotations

import pytest

from repro.engine import topology
from repro.engine.backends import (
    BACKEND_ENV_VAR,
    AsyncioBackend,
    SerialBackend,
    ThreadPoolBackend,
    resolve_backend,
)
from repro.engine.runtime import NetTrailsRuntime
from repro.engine.simulator import Simulator
from repro.errors import EngineError
from repro.protocols import mincost

CONCURRENT_BACKENDS = ["thread", "asyncio"]


# ---------------------------------------------------------------------------
# Backend resolution
# ---------------------------------------------------------------------------


class TestResolveBackend:
    def test_known_names(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("thread"), ThreadPoolBackend)
        assert isinstance(resolve_backend("asyncio"), AsyncioBackend)

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert isinstance(resolve_backend(None), SerialBackend)

    def test_env_hook_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "thread")
        assert isinstance(resolve_backend(None), ThreadPoolBackend)
        # An explicit name always wins over the environment.
        assert isinstance(resolve_backend("serial"), SerialBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(EngineError):
            resolve_backend("fork")

    def test_workers_plumbed_through(self):
        assert resolve_backend("thread", workers=3).workers == 3
        with pytest.raises(EngineError):
            resolve_backend("thread", workers=0)

    def test_instance_passes_through(self):
        backend = ThreadPoolBackend(workers=2)
        assert resolve_backend(backend) is backend
        with pytest.raises(EngineError):
            resolve_backend(backend, workers=4)

    def test_runtime_env_hook(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "thread")
        with NetTrailsRuntime("r1 reach(@D, S) :- edge(@S, D).", topology.line(2)) as runtime:
            assert isinstance(runtime.backend, ThreadPoolBackend)


# ---------------------------------------------------------------------------
# Simulator wave semantics
# ---------------------------------------------------------------------------


class TestWaveSemantics:
    def trace_run(self, backend):
        """One same-instant wave of keyed events around a keyless barrier."""
        sim = Simulator(backend=backend)
        log = []

        def event(name, extra=None):
            def fire():
                log.append(name)
                if extra is not None:
                    extra(sim)

            return fire

        # Two serialization domains plus a barrier in the middle; the "a"
        # events also schedule zero-delay follow-ups, which must land after
        # the whole wave in scheduling order.
        sim.schedule(1.0, event("a1", lambda s: s.schedule(0.0, event("a1-follow"), key="a")), key="a")
        sim.schedule(1.0, event("b1"), key="b")
        sim.schedule(1.0, event("barrier"))
        sim.schedule(1.0, event("a2", lambda s: s.schedule(0.0, event("a2-follow"), key="a")), key="a")
        sim.schedule(1.0, event("b2"), key="b")
        executed = sim.run()
        return executed, log, sim

    def test_serial_and_concurrent_runs_agree(self):
        serial_executed, serial_log, serial_sim = self.trace_run(SerialBackend())
        assert serial_executed == 7
        # Per-key order is part of the contract everywhere; the serial
        # reference additionally pins the global order.
        assert serial_log == ["a1", "b1", "barrier", "a2", "b2", "a1-follow", "a2-follow"]
        for backend in (ThreadPoolBackend(workers=2), AsyncioBackend(workers=2)):
            executed, log, sim = self.trace_run(backend)
            backend.close()
            assert executed == serial_executed
            assert (sim.processed_events, sim.rounds, sim.now) == (
                serial_sim.processed_events,
                serial_sim.rounds,
                serial_sim.now,
            )
            # The barrier splits the wave: everything before it finishes
            # first, then it runs alone, then the rest of the wave.
            assert log.index("a1") < log.index("barrier") < log.index("a2")
            assert log.index("b1") < log.index("barrier") < log.index("b2")
            # Follow-ups were deferred and merged after the wave, in the
            # sequence order of the events that scheduled them.
            assert log[-2:] == ["a1-follow", "a2-follow"]

    def test_max_events_truncates_wave(self):
        backend = ThreadPoolBackend(workers=2)
        sim = Simulator(backend=backend)
        log = []
        for index in range(5):
            sim.schedule(1.0, lambda index=index: log.append(index), key=index)
        assert sim.run(max_events=2) == 2
        assert log == [0, 1]
        assert sim.pending_events == 3
        assert sim.run() == 3
        assert log == [0, 1, 2, 3, 4]
        backend.close()

    def test_deferred_schedule_uses_wave_time(self):
        backend = ThreadPoolBackend(workers=2)
        sim = Simulator(backend=backend)
        times = []
        for key in ("a", "b"):
            sim.schedule(
                2.0,
                lambda: sim.schedule(1.5, lambda: times.append(sim.now)),
                key=key,
            )
        sim.run()
        backend.close()
        assert times == [3.5, 3.5]


# ---------------------------------------------------------------------------
# Runtime edge cases
# ---------------------------------------------------------------------------

LOCAL_PROGRAM = """
materialize(item, infinity, infinity, keys(1, 2)).
r1 double(@N, X) :- item(@N, X).
r2 seen(@N) :- double(@N, X).
"""


def converged(runtime):
    return {
        relation: runtime.state(relation)
        for relation in ("link", "path", "minCost")
    }


class TestBackendEdgeCases:
    @pytest.mark.parametrize("backend", CONCURRENT_BACKENDS)
    def test_single_node_topology(self, backend):
        """One node means one serialization domain: every wave takes the
        inline path, and results still match the serial reference."""
        single = topology.from_edges([], name="solo")
        single.add_node("n0")

        def run(spec):
            with NetTrailsRuntime(LOCAL_PROGRAM, single, backend=spec) as runtime:
                runtime.insert_batch("item", [["n0", 1], ["n0", 2]], run=True)
                return (
                    runtime.state("double"),
                    runtime.state("seen"),
                    runtime.simulator.processed_events,
                    runtime.message_stats().messages,
                )

        assert run(backend) == run("serial")

    @pytest.mark.parametrize("backend", CONCURRENT_BACKENDS)
    def test_zero_delay_coalesced_drains_on_one_node(self, backend, store_snapshots):
        """Every spoke's delta wave lands on the hub at one instant; the
        hub's zero-delay drain must coalesce them into the same single batch
        under every backend (same batch count, same state)."""

        def run(spec):
            with NetTrailsRuntime(
                mincost.program(), topology.star(8), backend=spec, backend_workers=4
            ) as runtime:
                runtime.seed_links(run=True)
                hub = runtime.nodes["n0"]
                return (
                    store_snapshots(runtime),
                    hub.stats.batches_processed,
                    hub.stats.deltas_received,
                    runtime.message_stats().messages,
                    runtime.simulator.processed_events,
                )

        assert run(backend) == run("serial")

    @pytest.mark.parametrize("backend", CONCURRENT_BACKENDS)
    def test_query_during_concurrent_churn(self, backend, store_snapshots):
        """A provenance query issued while churn deltas are still in flight:
        the traversal interleaves with concurrent drains, and both the answer
        and the post-quiescence state must equal the serial reference."""
        from repro.core.query import DistributedQueryEngine

        def run(spec):
            with NetTrailsRuntime(
                mincost.program(), topology.star(8), backend=spec, backend_workers=4
            ) as runtime:
                runtime.seed_links(run=True)
                target = sorted(runtime.state("minCost"), key=repr)[0]
                # Kick off churn but do NOT run to quiescence: the query's own
                # run_to_quiescence interleaves traversal with the churn waves.
                runtime.remove_link("n0", "n3")
                runtime.add_link("n0", "n3", 2.0)
                queries = DistributedQueryEngine(runtime)
                lineage = queries.lineage("minCost", list(target))
                participants = queries.participants("minCost", list(target))
                return (
                    sorted(str(ref) for ref in lineage.value),
                    set(participants.value),
                    store_snapshots(runtime),
                    runtime.message_stats().messages,
                )

        assert run(backend) == run("serial")

    @pytest.mark.parametrize("backend", CONCURRENT_BACKENDS)
    def test_delivery_log_order_matches_serial(self, backend):
        """The network delivery log is shared across receivers, so its
        interleaving must flow through the deferred merge: same order as
        serial, run after run, even though deliveries execute concurrently."""

        def log_of(spec):
            with NetTrailsRuntime(
                mincost.program(), topology.star(8), backend=spec, backend_workers=4
            ) as runtime:
                runtime.seed_links(run=True)
                return [
                    (round(when, 6), message.sender, message.receiver, str(message.payload))
                    for when, message in runtime.network.delivery_log()
                ]

        expected = log_of("serial")
        assert expected, "workload produced no deliveries"
        for _ in range(3):
            assert log_of(backend) == expected

    def test_context_manager_releases_backend_workers(self):
        backend = ThreadPoolBackend(workers=2)
        with NetTrailsRuntime(mincost.program(), topology.star(5), backend=backend) as runtime:
            runtime.seed_links(run=True)
            assert backend._pool is not None  # waves actually fanned out
        assert backend._pool is None  # __exit__ closed the pool
        # close() is idempotent — a second explicit close must not fail.
        runtime.close()
