"""Tests for dataflow primitives: matching, evaluation, head instantiation."""

import pytest

from repro.errors import EngineError
from repro.ndlog.ast import Aggregate, Atom, Condition, Constant, Expression, FunctionCall, Variable
from repro.ndlog.functions import default_registry
from repro.ndlog.parser import parse_rule
from repro.engine.dataflow import (
    bound_positions,
    evaluate_term,
    group_key_of,
    instantiate_head,
    match_atom,
    satisfies,
    term_is_ground,
)
from repro.engine.tuples import Fact


@pytest.fixture
def registry():
    return default_registry()


class TestEvaluateTerm:
    def test_arithmetic(self, registry):
        term = Expression("+", Variable("A"), Expression("*", Constant(2), Variable("B")))
        assert evaluate_term(term, {"A": 1, "B": 3}, registry) == 7

    def test_comparison_returns_bool(self, registry):
        term = Expression("<", Variable("A"), Constant(5))
        assert evaluate_term(term, {"A": 3}, registry) is True

    def test_function_call(self, registry):
        term = FunctionCall("f_concat", (Variable("P"), Constant(("x",))))
        assert evaluate_term(term, {"P": ("a",)}, registry) == ("a", "x")

    def test_unbound_variable_raises(self, registry):
        with pytest.raises(EngineError):
            evaluate_term(Variable("Missing"), {}, registry)

    def test_aggregate_cannot_be_evaluated(self, registry):
        with pytest.raises(EngineError):
            evaluate_term(Aggregate("min", "C"), {}, registry)

    def test_term_is_ground(self):
        term = Expression("+", Variable("A"), Constant(1))
        assert term_is_ground(term, {"A": 1})
        assert not term_is_ground(term, {})


class TestMatchAtom:
    def test_successful_match_extends_bindings(self, registry):
        atom = Atom("link", (Variable("S"), Variable("D"), Variable("C")), 0)
        fact = Fact.make("link", ["n0", "n1", 2])
        bindings = match_atom(atom, fact, {}, registry)
        assert bindings == {"S": "n0", "D": "n1", "C": 2}

    def test_conflicting_binding_fails(self, registry):
        atom = Atom("link", (Variable("S"), Variable("S"), Variable("C")), 0)
        fact = Fact.make("link", ["n0", "n1", 2])
        assert match_atom(atom, fact, {}, registry) is None

    def test_existing_bindings_respected(self, registry):
        atom = Atom("link", (Variable("S"), Variable("D"), Variable("C")), 0)
        fact = Fact.make("link", ["n0", "n1", 2])
        assert match_atom(atom, fact, {"S": "nX"}, registry) is None
        assert match_atom(atom, fact, {"S": "n0"}, registry) is not None

    def test_constant_argument_must_equal(self, registry):
        atom = Atom("link", (Variable("S"), Constant("n1"), Variable("C")), 0)
        assert match_atom(atom, Fact.make("link", ["n0", "n1", 2]), {}, registry)
        assert match_atom(atom, Fact.make("link", ["n0", "n9", 2]), {}, registry) is None

    def test_wrong_relation_or_arity_fails(self, registry):
        atom = Atom("link", (Variable("S"), Variable("D")), 0)
        assert match_atom(atom, Fact.make("path", ["a", "b"]), {}, registry) is None
        assert match_atom(atom, Fact.make("link", ["a", "b", "c"]), {}, registry) is None

    def test_underscore_matches_anything_without_binding(self, registry):
        atom = Atom("link", (Variable("S"), Variable("_"), Variable("_")), 0)
        bindings = match_atom(atom, Fact.make("link", ["n0", "n1", 2]), {}, registry)
        assert bindings == {"S": "n0"}

    def test_ground_expression_argument_compared_by_value(self, registry):
        atom = Atom("p", (Variable("S"), Expression("+", Variable("C"), Constant(1))), 0)
        fact = Fact.make("p", ["n0", 5])
        assert match_atom(atom, fact, {"C": 4}, registry) is not None
        assert match_atom(atom, fact, {"C": 7}, registry) is None


class TestConditionsAndHeads:
    def test_satisfies_numeric_convention(self, registry):
        condition = Condition(FunctionCall("f_member", (Variable("P"), Variable("X"))))
        assert satisfies(condition, {"P": (1, 2), "X": 1}, registry)
        assert not satisfies(condition, {"P": (1, 2), "X": 5}, registry)

    def test_satisfies_comparison(self, registry):
        rule = parse_rule("r p(@S, C) :- q(@S, C), C < 4.")
        condition = rule.conditions[0]
        assert satisfies(condition, {"C": 3}, registry)
        assert not satisfies(condition, {"C": 9}, registry)

    def test_instantiate_head_evaluates_expressions(self, registry):
        rule = parse_rule("r p(@S, D, C1 + C2) :- q(@S, D, C1, C2).")
        fact = instantiate_head(rule.head, {"S": "n0", "D": "n1", "C1": 2, "C2": 3}, registry)
        assert fact == Fact.make("p", ["n0", "n1", 5])

    def test_instantiate_head_with_aggregate_value(self, registry):
        rule = parse_rule("r m(@S, D, min<C>) :- p(@S, D, C).")
        fact = instantiate_head(rule.head, {"S": "a", "D": "b"}, registry, aggregate_value=7)
        assert fact == Fact.make("m", ["a", "b", 7])

    def test_instantiate_head_missing_aggregate_value_raises(self, registry):
        rule = parse_rule("r m(@S, min<C>) :- p(@S, C).")
        with pytest.raises(EngineError):
            instantiate_head(rule.head, {"S": "a"}, registry)

    def test_group_key_excludes_aggregate(self, registry):
        rule = parse_rule("r m(@S, D, min<C>) :- p(@S, D, C).")
        assert group_key_of(rule.head, {"S": "a", "D": "b", "C": 9}, registry) == ("a", "b")

    def test_bound_positions(self, registry):
        atom = Atom("link", (Variable("S"), Variable("D"), Constant(3)), 0)
        assert bound_positions(atom, {"S": "n0"}) == {0: "n0", 2: 3}
