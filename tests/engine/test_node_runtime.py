"""Tests for Node and NetTrailsRuntime: distributed execution end to end."""

import pytest

from repro.errors import EngineError, UnknownNodeError
from repro.engine import topology
from repro.engine.runtime import NetTrailsRuntime
from repro.engine.tuples import Fact
from repro.protocols import mincost

TWO_NODE_PROGRAM = """
materialize(link, infinity, infinity, keys(1, 2)).
r1 reach(@S, D) :- link(@S, D, C).
r2 reach(@S, D) :- link(@S, Z, C), reach(@Z, D), S != D.
"""


@pytest.fixture
def line3_runtime():
    net = topology.line(3)
    runtime = NetTrailsRuntime(TWO_NODE_PROGRAM, net, provenance=False)
    runtime.seed_links(run=True)
    return runtime


class TestRuntimeBasics:
    def test_base_tuples_partitioned_by_location(self, line3_runtime):
        runtime = line3_runtime
        assert runtime.node_state("n0", "link") == [("n0", "n1", 1.0)]
        assert ("n1", "n0", 1.0) in runtime.node_state("n1", "link")

    def test_derived_state_reaches_fixpoint_across_nodes(self, line3_runtime):
        reach = set(line3_runtime.state("reach"))
        # every ordered pair of distinct nodes is reachable on a connected line
        assert reach == {
            (a, b)
            for a in ("n0", "n1", "n2")
            for b in ("n0", "n1", "n2")
            if a != b
        } | {("n0", "n0"), ("n1", "n1"), ("n2", "n2")} - {("n0", "n0"), ("n1", "n1"), ("n2", "n2")}

    def test_insert_routes_to_owning_node(self, line3_runtime):
        runtime = line3_runtime
        fact = runtime.insert("link", ["n2", "n0", 5.0])
        assert fact.values[0] == "n2"
        assert ("n2", "n0", 5.0) in runtime.node_state("n2", "link")

    def test_insert_with_existing_key_overwrites(self, line3_runtime):
        runtime = line3_runtime
        runtime.insert("link", ["n0", "n1", 9.0])
        runtime.run_to_quiescence()
        rows = [row for row in runtime.node_state("n0", "link") if row[1] == "n1"]
        assert rows == [("n0", "n1", 9.0)]

    def test_delete_base_tuple_retracts_derived_state(self, line3_runtime):
        runtime = line3_runtime
        runtime.delete("link", ["n0", "n1", 1.0])
        runtime.delete("link", ["n1", "n0", 1.0])
        runtime.run_to_quiescence()
        reach = set(runtime.state("reach"))
        assert ("n0", "n2") not in reach
        assert ("n1", "n2") in reach

    def test_unknown_node_rejected(self, line3_runtime):
        with pytest.raises(UnknownNodeError):
            line3_runtime.node("missing")
        with pytest.raises(UnknownNodeError):
            line3_runtime.insert("link", ["ghost", "n0", 1.0])

    def test_message_stats_grow_with_execution(self, line3_runtime):
        assert line3_runtime.message_stats().messages > 0

    def test_relation_sizes_and_total(self, line3_runtime):
        sizes = line3_runtime.relation_sizes()
        assert sizes["link"] == 4
        assert line3_runtime.total_facts() == sum(sizes.values())

    def test_snapshot_structure(self, line3_runtime):
        snapshot = line3_runtime.snapshot()
        assert snapshot["program"] == "program"
        assert set(snapshot["nodes"]) == {"'n0'", "'n1'", "'n2'"}


class TestNodeBehaviour:
    def test_insert_base_at_wrong_node_rejected(self, line3_runtime):
        node = line3_runtime.node("n0")
        with pytest.raises(EngineError):
            node.insert_base(Fact.make("link", ["n1", "n2", 1.0]))

    def test_unknown_message_category_rejected(self, line3_runtime):
        from repro.engine.messages import Message

        node = line3_runtime.node("n0")
        with pytest.raises(EngineError):
            node.receive(Message(sender="n1", receiver="n0", category="mystery", payload=None))

    def test_handler_registration(self, line3_runtime):
        from repro.engine.messages import Message

        node = line3_runtime.node("n0")
        seen = []
        node.register_handler("custom", seen.append)
        node.receive(Message(sender="n1", receiver="n0", category="custom", payload="data"))
        assert len(seen) == 1

    def test_node_stats_accumulate(self, line3_runtime):
        stats = line3_runtime.node("n1").stats
        assert stats.updates_processed > 0
        assert stats.rule_firings > 0


class TestShardingConfiguration:
    def test_num_shards_below_one_rejected(self):
        with pytest.raises(EngineError):
            NetTrailsRuntime(TWO_NODE_PROGRAM, topology.line(2), num_shards=0)

    def test_shard_workers_without_num_shards_rejected(self):
        # Workers have nothing to parallelise over on the flat store; silently
        # running serial would make "parallel" benchmarks lie.
        with pytest.raises(EngineError):
            NetTrailsRuntime(TWO_NODE_PROGRAM, topology.line(2), shard_workers=4)

    def test_sharded_runtime_converges_like_flat(self):
        flat = NetTrailsRuntime(TWO_NODE_PROGRAM, topology.line(3), provenance=False)
        # The context-manager form releases the shard worker threads even if
        # an assertion fails — the leak-proof pattern for worker-backed tests.
        with NetTrailsRuntime(
            TWO_NODE_PROGRAM, topology.line(3), provenance=False,
            num_shards=2, shard_workers=2,
        ) as sharded:
            for runtime in (flat, sharded):
                runtime.seed_links(run=True)
            assert sharded.state("reach") == flat.state("reach")
            assert sharded.num_shards == 2 and sharded.shard_workers == 2


class TestDynamicTopology:
    def test_add_link_updates_state(self):
        net = topology.line(3)
        runtime = mincost.setup(net)
        assert ("n0", "n2", 2.0) in runtime.state("minCost")
        runtime.add_link("n0", "n2", 1.0)
        runtime.run_to_quiescence()
        assert ("n0", "n2", 1.0) in runtime.state("minCost")
        assert mincost.check_against_reference(runtime, net)

    def test_remove_link_updates_state(self):
        net = topology.ring(4)
        runtime = mincost.setup(net)
        runtime.remove_link("n0", "n1")
        runtime.run_to_quiescence()
        assert mincost.check_against_reference(runtime, net)
        # n0 now reaches n1 the long way round
        assert ("n0", "n1", 3.0) in runtime.state("minCost")


class TestQueryCacheCapacityEnvHook:
    """NETTRAILS_QUERY_CACHE_CAPACITY: env-var parity with NETTRAILS_BACKEND."""

    PROGRAM = "r1 reach(@D, S) :- edge(@S, D)."

    def build(self, **kwargs):
        return NetTrailsRuntime(self.PROGRAM, topology.line(2), **kwargs)

    def test_env_sets_the_default_capacity(self, monkeypatch):
        from repro.engine.runtime import CACHE_CAPACITY_ENV_VAR

        monkeypatch.setenv(CACHE_CAPACITY_ENV_VAR, "17")
        assert self.build().query_cache_capacity == 17

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        from repro.engine.runtime import CACHE_CAPACITY_ENV_VAR

        monkeypatch.setenv(CACHE_CAPACITY_ENV_VAR, "17")
        assert self.build(query_cache_capacity=5).query_cache_capacity == 5
        assert self.build(query_cache_capacity=0).query_cache_capacity == 0

    def test_unset_or_blank_defers_to_engine_default(self, monkeypatch):
        from repro.engine.runtime import CACHE_CAPACITY_ENV_VAR

        monkeypatch.delenv(CACHE_CAPACITY_ENV_VAR, raising=False)
        assert self.build().query_cache_capacity is None
        monkeypatch.setenv(CACHE_CAPACITY_ENV_VAR, "  ")
        assert self.build().query_cache_capacity is None

    def test_malformed_or_negative_env_rejected(self, monkeypatch):
        from repro.engine.runtime import CACHE_CAPACITY_ENV_VAR

        monkeypatch.setenv(CACHE_CAPACITY_ENV_VAR, "many")
        with pytest.raises(EngineError, match="not an integer"):
            self.build()
        monkeypatch.setenv(CACHE_CAPACITY_ENV_VAR, "-3")
        with pytest.raises(EngineError, match=">= 0"):
            self.build()

    def test_env_capacity_reaches_the_query_engine(self, monkeypatch):
        from repro.core.query import DistributedQueryEngine
        from repro.engine.runtime import CACHE_CAPACITY_ENV_VAR

        monkeypatch.setenv(CACHE_CAPACITY_ENV_VAR, "7")
        runtime = mincost.setup(topology.ring(3))
        engine = DistributedQueryEngine(runtime)
        assert engine.cache_capacity == 7
