"""Tests for program compilation."""

import pytest

from repro.errors import NDlogValidationError
from repro.engine.compiler import compile_program
from repro.ndlog.parser import parse_program
from repro.protocols import mincost, path_vector
from repro.legacy.proxy import LEGACY_PROGRAM_SOURCE


class TestCompileProgram:
    def test_rules_are_localized(self):
        compiled = compile_program(mincost.program())
        assert all(rule.is_local() for rule in compiled.rules)

    def test_maybe_rules_separated(self):
        compiled = compile_program(parse_program(LEGACY_PROGRAM_SOURCE, name="legacy"))
        assert len(compiled.maybe_rules) == 2
        assert all(rule.is_maybe for rule in compiled.maybe_rules)
        assert all(not rule.is_maybe for rule in compiled.rules)

    def test_delta_index_covers_every_positive_literal(self):
        compiled = compile_program(mincost.program())
        total = sum(len(entries) for entries in compiled.delta_index.values())
        expected = sum(len(rule.positive_literals) for rule in compiled.rules)
        assert total == expected

    def test_negation_index(self):
        program = parse_program(
            "r1 up(@S, D) :- link(@S, D). r2 alone(@S, D) :- node(@S, D), !up(@S, D).",
            name="neg",
        )
        compiled = compile_program(program)
        assert [rule.name for rule in compiled.negation_index["up"]] == ["r2"]

    def test_base_and_derived_relations(self):
        compiled = compile_program(path_vector.program())
        assert "link" in compiled.base_relations()
        assert "bestPath" in compiled.derived_relations()

    def test_invalid_program_rejected(self):
        program = parse_program("r1 p(@S, X) :- q(@S).", name="bad")
        with pytest.raises(NDlogValidationError):
            compile_program(program)

    def test_validation_can_be_skipped(self):
        program = parse_program("r1 p(@S, D) :- q(@S, D).", name="ok")
        compiled = compile_program(program, validate=False)
        assert compiled.warnings == []

    def test_aggregate_rule_with_remote_head_rejected(self):
        # Aggregation must happen where the group lives.
        program = parse_program("r1 best(@D, S, min<C>) :- path(@S, D, C).", name="aggbad")
        with pytest.raises(NDlogValidationError, match="aggregation is local"):
            compile_program(program)

    def test_compiled_program_exposes_catalog(self):
        compiled = compile_program(mincost.program())
        assert compiled.catalog.schema("link").key_positions == (0, 1)
