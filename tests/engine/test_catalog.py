"""Tests for the relation catalog."""

import pytest

from repro.errors import SchemaError
from repro.engine.catalog import Catalog
from repro.engine.tuples import Fact
from repro.ndlog.parser import parse_program
from repro.protocols import mincost


class TestCatalogFromProgram:
    def test_location_indices_inferred(self):
        catalog = Catalog.from_program(mincost.program())
        assert catalog.schema("link").location_index == 0
        assert catalog.schema("minCost").location_index == 0

    def test_keys_from_materialize(self):
        catalog = Catalog.from_program(mincost.program())
        assert catalog.schema("link").key_positions == (0, 1)

    def test_pending_keys_applied_when_relation_first_seen_later(self):
        # materialize appears in one program, the atoms in a later one.
        first = parse_program("materialize(route, infinity, infinity, keys(1, 2)).\n"
                              "r dummy(@X) :- seed(@X).", name="first")
        second = parse_program("r2 out(@A, B, C) :- route(@A, B, C).", name="second")
        catalog = Catalog.from_program(first)
        catalog.add_program(second)
        assert catalog.schema("route").key_positions == (0, 1)
        assert catalog.schema("route").arity == 3

    def test_inconsistent_arity_rejected(self):
        program = parse_program("r1 p(@S, D) :- q(@S, D).", name="a")
        catalog = Catalog.from_program(program)
        other = parse_program("r2 x(@S) :- q(@S).", name="b")
        with pytest.raises(SchemaError):
            catalog.add_program(other)

    def test_inconsistent_location_rejected(self):
        catalog = Catalog.from_program(parse_program("r1 p(@S, D) :- q(@S, D).", name="a"))
        with pytest.raises(SchemaError):
            catalog.add_program(parse_program("r2 z(@S) :- p(S, @D).", name="b"))

    def test_location_of_fact(self):
        catalog = Catalog.from_program(mincost.program())
        assert catalog.location_of(Fact.make("link", ["n3", "n4", 1])) == "n3"

    def test_unknown_relation_gets_default_schema(self):
        catalog = Catalog()
        fact = Fact.make("mystery", ["n1", 2])
        assert catalog.location_of(fact) == "n1"
        assert catalog.key_of(fact) is None

    def test_unknown_relation_schema_lookup_raises(self):
        with pytest.raises(SchemaError):
            Catalog().schema("nope")

    def test_relations_listing(self):
        catalog = Catalog.from_program(mincost.program())
        assert {"link", "path", "minCost"} <= set(catalog.relations())
