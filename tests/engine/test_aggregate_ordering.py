"""Tests for the aggregate update-ordering design choice (and its ablation switch).

The default insert-before-retract ordering is what keeps deletion cascades
small on cyclic topologies; the ablation mode (retract-first) must still be
*correct*, just more expensive, which is exactly what the ablation benchmark
measures.
"""

import pytest

from repro.engine import topology
from repro.engine.runtime import NetTrailsRuntime
from repro.protocols import mincost


def build(retract_first: bool):
    net = topology.ring(5)
    runtime = NetTrailsRuntime(
        mincost.program(), net, aggregate_retract_first=retract_first
    )
    runtime.seed_links(run=True)
    return net, runtime


class TestOrderingModes:
    @pytest.mark.parametrize("retract_first", [False, True])
    def test_both_orderings_converge_to_the_same_state(self, retract_first):
        net, runtime = build(retract_first)
        assert mincost.check_against_reference(runtime, net)
        runtime.remove_link("n0", "n1")
        runtime.run_to_quiescence()
        assert mincost.check_against_reference(runtime, net)

    def test_default_ordering_needs_fewer_events_on_deletion(self):
        _net_a, insert_first = build(retract_first=False)
        _net_b, retract_first = build(retract_first=True)

        def deletion_cost(runtime):
            before = runtime.simulator.processed_events
            runtime.remove_link("n0", "n1")
            runtime.run_to_quiescence()
            return runtime.simulator.processed_events - before

        assert deletion_cost(insert_first) <= deletion_cost(retract_first)

    def test_default_mode_is_insert_first(self):
        _net, runtime = build(retract_first=False)
        assert runtime.node("n0").evaluator.aggregate_retract_first is False
