"""Tests for the per-node incremental evaluator (single-node, no network)."""

import random
from collections import Counter

import pytest

from repro.engine.compiler import compile_program
from repro.engine.evaluator import LocalEvaluator
from repro.engine.store import TupleStore
from repro.engine.tuples import Fact
from repro.ndlog.parser import parse_program


def make_evaluator(source, node="n0", name="test"):
    compiled = compile_program(parse_program(source, name=name))
    store = TupleStore()
    return LocalEvaluator(compiled, store, node), store


def insert(evaluator, store, fact):
    """Insert a fact as if the node had stored it, returning the effects."""
    if store.add_derivation(fact, f"test:{fact}"):
        return evaluator.on_fact_inserted(fact)
    return []


def delete(evaluator, store, fact):
    derivations = store.remove_fact(fact)
    if derivations:
        return evaluator.on_fact_deleted(fact)
    return []


def batch(evaluator, store, inserts=(), deletes=()):
    """Apply a whole delta batch to the store and evaluator, returning the effects."""
    deltas = [(-1, fact, f"test:{fact}") for fact in deletes]
    deltas += [(+1, fact, f"test:{fact}") for fact in inserts]
    newly_present, disappeared, _ = store.apply_delta_batch(deltas)
    return evaluator.on_batch(newly_present, disappeared)


LOCAL_JOIN = """
r1 twoHop(@S, D) :- link(@S, Z), link2(@S, Z, D).
"""


class TestBasicFiring:
    def test_join_fires_when_both_sides_present(self):
        evaluator, store = make_evaluator(LOCAL_JOIN)
        assert insert(evaluator, store, Fact.make("link", ["n0", "a"])) == []
        effects = insert(evaluator, store, Fact.make("link2", ["n0", "a", "b"]))
        assert len(effects) == 1
        effect = effects[0]
        assert effect.sign == +1
        assert effect.head_fact == Fact.make("twoHop", ["n0", "b"])
        assert effect.head_location == "n0"
        assert len(effect.body_facts) == 2

    def test_no_firing_without_join_partner(self):
        evaluator, store = make_evaluator(LOCAL_JOIN)
        assert insert(evaluator, store, Fact.make("link2", ["n0", "x", "y"])) == []

    def test_duplicate_binding_not_refired(self):
        evaluator, store = make_evaluator(LOCAL_JOIN)
        insert(evaluator, store, Fact.make("link", ["n0", "a"]))
        insert(evaluator, store, Fact.make("link2", ["n0", "a", "b"]))
        # Inserting the same fact again does not reach the evaluator at all
        # (the store reports it as already present), so no duplicate firing.
        assert insert(evaluator, store, Fact.make("link2", ["n0", "a", "b"])) == []

    def test_retraction_on_body_fact_deletion(self):
        evaluator, store = make_evaluator(LOCAL_JOIN)
        insert(evaluator, store, Fact.make("link", ["n0", "a"]))
        inserted = insert(evaluator, store, Fact.make("link2", ["n0", "a", "b"]))
        retracted = delete(evaluator, store, Fact.make("link", ["n0", "a"]))
        assert len(retracted) == 1
        assert retracted[0].sign == -1
        assert retracted[0].firing_id == inserted[0].firing_id
        assert evaluator.firing_count == 0

    def test_conditions_and_assignments(self):
        evaluator, store = make_evaluator(
            "r1 far(@S, D, C) :- link(@S, D, C0), C := C0 * 2, C > 5."
        )
        assert insert(evaluator, store, Fact.make("link", ["n0", "a", 2])) == []
        effects = insert(evaluator, store, Fact.make("link", ["n0", "b", 4]))
        assert effects[0].head_fact == Fact.make("far", ["n0", "b", 8])

    def test_self_join_does_not_duplicate_derivations(self):
        evaluator, store = make_evaluator("r1 pair(@S, A, B) :- item(@S, A), item(@S, B).")
        insert(evaluator, store, Fact.make("item", ["n0", 1]))
        effects = insert(evaluator, store, Fact.make("item", ["n0", 2]))
        heads = sorted(str(e.head_fact) for e in effects)
        # (1,2), (2,1) and (2,2) are all new; (1,1) was derived on first insert.
        assert len(effects) == 3
        assert len(set(heads)) == 3

    def test_remote_head_location_reported(self):
        evaluator, store = make_evaluator("r1 echo(@D, S) :- link(@S, D).", node="n0")
        effects = insert(evaluator, store, Fact.make("link", ["n0", "n9"]))
        assert effects[0].head_location == "n9"


class TestAggregates:
    AGG = "r1 best(@S, D, min<C>) :- path(@S, D, C)."

    def test_min_aggregate_tracks_group_minimum(self):
        evaluator, store = make_evaluator(self.AGG)
        effects = insert(evaluator, store, Fact.make("path", ["n0", "d", 5]))
        assert effects[0].head_fact == Fact.make("best", ["n0", "d", 5])
        effects = insert(evaluator, store, Fact.make("path", ["n0", "d", 3]))
        signs = [(e.sign, e.head_fact.values[2]) for e in effects]
        assert (-1, 5) in signs and (+1, 3) in signs

    def test_worse_value_does_not_change_aggregate(self):
        evaluator, store = make_evaluator(self.AGG)
        insert(evaluator, store, Fact.make("path", ["n0", "d", 3]))
        assert insert(evaluator, store, Fact.make("path", ["n0", "d", 9])) == []

    def test_deleting_minimum_falls_back_to_next_best(self):
        evaluator, store = make_evaluator(self.AGG)
        insert(evaluator, store, Fact.make("path", ["n0", "d", 3]))
        insert(evaluator, store, Fact.make("path", ["n0", "d", 9]))
        effects = delete(evaluator, store, Fact.make("path", ["n0", "d", 3]))
        signs = [(e.sign, e.head_fact.values[2]) for e in effects]
        assert (-1, 3) in signs and (+1, 9) in signs

    def test_deleting_last_entry_removes_aggregate(self):
        evaluator, store = make_evaluator(self.AGG)
        insert(evaluator, store, Fact.make("path", ["n0", "d", 3]))
        effects = delete(evaluator, store, Fact.make("path", ["n0", "d", 3]))
        assert [e.sign for e in effects] == [-1]
        assert evaluator.firing_count == 0

    def test_groups_are_independent(self):
        evaluator, store = make_evaluator(self.AGG)
        insert(evaluator, store, Fact.make("path", ["n0", "d1", 3]))
        effects = insert(evaluator, store, Fact.make("path", ["n0", "d2", 7]))
        assert effects[0].head_fact == Fact.make("best", ["n0", "d2", 7])

    def test_count_star_aggregate(self):
        evaluator, store = make_evaluator("r1 total(@S, count<*>) :- item(@S, X).")
        insert(evaluator, store, Fact.make("item", ["n0", "a"]))
        effects = insert(evaluator, store, Fact.make("item", ["n0", "b"]))
        values = [e.head_fact.values[1] for e in effects if e.sign > 0]
        assert values == [2]

    def test_sum_aggregate(self):
        evaluator, store = make_evaluator("r1 total(@S, sum<C>) :- item(@S, C).")
        insert(evaluator, store, Fact.make("item", ["n0", 2]))
        effects = insert(evaluator, store, Fact.make("item", ["n0", 5]))
        assert any(e.sign > 0 and e.head_fact.values[1] == 7 for e in effects)

    def test_max_aggregate_contributing_facts(self):
        evaluator, store = make_evaluator("r1 worst(@S, max<C>) :- item(@S, C).")
        insert(evaluator, store, Fact.make("item", ["n0", 2]))
        effects = insert(evaluator, store, Fact.make("item", ["n0", 8]))
        positive = [e for e in effects if e.sign > 0][0]
        assert positive.body_facts == (Fact.make("item", ["n0", 8]),)


class TestNegation:
    NEG = """
    r1 candidate(@S, D) :- offer(@S, D), !blocked(@S, D).
    """

    def test_negative_literal_blocks_firing(self):
        evaluator, store = make_evaluator(self.NEG)
        insert(evaluator, store, Fact.make("blocked", ["n0", "d"]))
        assert insert(evaluator, store, Fact.make("offer", ["n0", "d"])) == []

    def test_firing_when_no_blocker(self):
        evaluator, store = make_evaluator(self.NEG)
        effects = insert(evaluator, store, Fact.make("offer", ["n0", "d"]))
        assert effects[0].head_fact == Fact.make("candidate", ["n0", "d"])

    def test_later_blocker_retracts_existing_firing(self):
        evaluator, store = make_evaluator(self.NEG)
        insert(evaluator, store, Fact.make("offer", ["n0", "d"]))
        effects = insert(evaluator, store, Fact.make("blocked", ["n0", "d"]))
        assert [e.sign for e in effects] == [-1]
        assert effects[0].head_fact == Fact.make("candidate", ["n0", "d"])

    def test_removing_blocker_rederives(self):
        evaluator, store = make_evaluator(self.NEG)
        insert(evaluator, store, Fact.make("blocked", ["n0", "d"]))
        insert(evaluator, store, Fact.make("offer", ["n0", "d"]))
        effects = delete(evaluator, store, Fact.make("blocked", ["n0", "d"]))
        assert [e.sign for e in effects] == [+1]
        assert effects[0].head_fact == Fact.make("candidate", ["n0", "d"])

    def test_unrelated_blocker_does_not_retract(self):
        evaluator, store = make_evaluator(self.NEG)
        insert(evaluator, store, Fact.make("offer", ["n0", "d"]))
        assert insert(evaluator, store, Fact.make("blocked", ["n0", "other"])) == []


def net_effects(effects):
    """Net derivation count per (rule, head, body) across an effect history.

    Firing ids differ between batched and one-at-a-time evaluation, but the
    *content* of the surviving derivations must be identical; summing signs
    per content key cancels every derive/retract pair.
    """
    counts = Counter()
    for effect in effects:
        counts[(effect.rule_name, effect.head_fact, effect.body_facts)] += effect.sign
    return {key: count for key, count in counts.items() if count}


class TestOnBatch:
    def test_join_across_batch_members(self):
        evaluator, store = make_evaluator(LOCAL_JOIN)
        effects = batch(
            evaluator,
            store,
            inserts=[Fact.make("link", ["n0", "a"]), Fact.make("link2", ["n0", "a", "b"])],
        )
        assert len(effects) == 1
        assert effects[0].head_fact == Fact.make("twoHop", ["n0", "b"])

    def test_self_join_batch_produces_each_binding_once(self):
        evaluator, store = make_evaluator("r1 pair(@S, A, B) :- item(@S, A), item(@S, B).")
        effects = batch(
            evaluator,
            store,
            inserts=[Fact.make("item", ["n0", 1]), Fact.make("item", ["n0", 2])],
        )
        heads = [str(e.head_fact) for e in effects]
        assert len(heads) == 4  # (1,1), (1,2), (2,1), (2,2) — exactly once each
        assert len(set(heads)) == 4

    def test_aggregate_recomputed_once_per_batch(self):
        evaluator, store = make_evaluator("r1 best(@S, D, min<C>) :- path(@S, D, C).")
        effects = batch(
            evaluator,
            store,
            inserts=[Fact.make("path", ["n0", "d", cost]) for cost in (5, 3, 9)],
        )
        # One consolidated effect for the final minimum; a one-at-a-time
        # replay would emit +5, then -5/+3 as the minimum improves.
        assert [(e.sign, e.head_fact.values[2]) for e in effects] == [(+1, 3)]

    def test_negation_within_batch(self):
        evaluator, store = make_evaluator(
            "r1 candidate(@S, D) :- offer(@S, D), !blocked(@S, D)."
        )
        effects = batch(
            evaluator,
            store,
            inserts=[Fact.make("offer", ["n0", "d"]), Fact.make("blocked", ["n0", "d"])],
        )
        assert effects == []  # the blocker lands in the same batch
        effects = batch(evaluator, store, deletes=[Fact.make("blocked", ["n0", "d"])])
        assert [e.sign for e in effects] == [+1]

    def test_mixed_insert_and_delete_batch(self):
        evaluator, store = make_evaluator(LOCAL_JOIN)
        batch(evaluator, store, inserts=[Fact.make("link", ["n0", "a"])])
        batch(evaluator, store, inserts=[Fact.make("link2", ["n0", "a", "b"])])
        effects = batch(
            evaluator,
            store,
            inserts=[Fact.make("link2", ["n0", "a", "c"])],
            deletes=[Fact.make("link2", ["n0", "a", "b"])],
        )
        signs = {(e.sign, str(e.head_fact)) for e in effects}
        assert signs == {(-1, 'twoHop("n0", "b")'), (+1, 'twoHop("n0", "c")')}

    def test_batch_is_not_reentrant(self):
        evaluator, store = make_evaluator(LOCAL_JOIN)
        evaluator._dirty_agg_groups = set()
        with pytest.raises(Exception):
            evaluator.on_batch([], [])

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_batch_equals_one_at_a_time_replay(self, seed):
        """Property: on_batch reaches the same store/derivation state as replay."""
        source = """
        r1 best(@S, D, min<C>) :- path(@S, D, C).
        r2 path(@S, D, C) :- edge(@S, D, C).
        r3 good(@S, D) :- edge(@S, D, C), !bad(@S, D).
        """
        rng = random.Random(seed)
        pool = [
            Fact.make("edge", ["n0", dest, cost])
            for dest in ("a", "b", "c")
            for cost in (1, 2, 3)
        ] + [Fact.make("bad", ["n0", dest]) for dest in ("a", "b")]
        script = []
        present = set()
        for _ in range(40):
            fact = rng.choice(pool)
            if fact in present:
                script.append(("-", fact))
                present.discard(fact)
            else:
                script.append(("+", fact))
                present.add(fact)

        single_eval, single_store = make_evaluator(source)
        single_effects = []
        for op, fact in script:
            if op == "+":
                single_effects.extend(insert(single_eval, single_store, fact))
            else:
                single_effects.extend(delete(single_eval, single_store, fact))

        batch_eval, batch_store = make_evaluator(source)
        batch_effects = []
        cursor = 0
        while cursor < len(script):
            size = rng.randint(1, 8)
            chunk = script[cursor : cursor + size]
            cursor += size
            # Preserve the in-batch delta order (a fact may flip twice within
            # one chunk; apply_delta_batch collapses it to the net transition).
            deltas = [
                (+1 if op == "+" else -1, fact, f"test:{fact}") for op, fact in chunk
            ]
            newly_present, disappeared, _ = batch_store.apply_delta_batch(deltas)
            batch_effects.extend(batch_eval.on_batch(newly_present, disappeared))

        assert single_store.snapshot() == batch_store.snapshot()
        assert net_effects(single_effects) == net_effects(batch_effects)
        assert single_eval.firing_count == batch_eval.firing_count
