"""Tests for the per-node incremental evaluator (single-node, no network)."""

import pytest

from repro.engine.compiler import compile_program
from repro.engine.evaluator import LocalEvaluator
from repro.engine.store import TupleStore
from repro.engine.tuples import Fact
from repro.ndlog.parser import parse_program


def make_evaluator(source, node="n0", name="test"):
    compiled = compile_program(parse_program(source, name=name))
    store = TupleStore()
    return LocalEvaluator(compiled, store, node), store


def insert(evaluator, store, fact):
    """Insert a fact as if the node had stored it, returning the effects."""
    if store.add_derivation(fact, f"test:{fact}"):
        return evaluator.on_fact_inserted(fact)
    return []


def delete(evaluator, store, fact):
    derivations = store.remove_fact(fact)
    if derivations:
        return evaluator.on_fact_deleted(fact)
    return []


LOCAL_JOIN = """
r1 twoHop(@S, D) :- link(@S, Z), link2(@S, Z, D).
"""


class TestBasicFiring:
    def test_join_fires_when_both_sides_present(self):
        evaluator, store = make_evaluator(LOCAL_JOIN)
        assert insert(evaluator, store, Fact.make("link", ["n0", "a"])) == []
        effects = insert(evaluator, store, Fact.make("link2", ["n0", "a", "b"]))
        assert len(effects) == 1
        effect = effects[0]
        assert effect.sign == +1
        assert effect.head_fact == Fact.make("twoHop", ["n0", "b"])
        assert effect.head_location == "n0"
        assert len(effect.body_facts) == 2

    def test_no_firing_without_join_partner(self):
        evaluator, store = make_evaluator(LOCAL_JOIN)
        assert insert(evaluator, store, Fact.make("link2", ["n0", "x", "y"])) == []

    def test_duplicate_binding_not_refired(self):
        evaluator, store = make_evaluator(LOCAL_JOIN)
        insert(evaluator, store, Fact.make("link", ["n0", "a"]))
        insert(evaluator, store, Fact.make("link2", ["n0", "a", "b"]))
        # Inserting the same fact again does not reach the evaluator at all
        # (the store reports it as already present), so no duplicate firing.
        assert insert(evaluator, store, Fact.make("link2", ["n0", "a", "b"])) == []

    def test_retraction_on_body_fact_deletion(self):
        evaluator, store = make_evaluator(LOCAL_JOIN)
        insert(evaluator, store, Fact.make("link", ["n0", "a"]))
        inserted = insert(evaluator, store, Fact.make("link2", ["n0", "a", "b"]))
        retracted = delete(evaluator, store, Fact.make("link", ["n0", "a"]))
        assert len(retracted) == 1
        assert retracted[0].sign == -1
        assert retracted[0].firing_id == inserted[0].firing_id
        assert evaluator.firing_count == 0

    def test_conditions_and_assignments(self):
        evaluator, store = make_evaluator(
            "r1 far(@S, D, C) :- link(@S, D, C0), C := C0 * 2, C > 5."
        )
        assert insert(evaluator, store, Fact.make("link", ["n0", "a", 2])) == []
        effects = insert(evaluator, store, Fact.make("link", ["n0", "b", 4]))
        assert effects[0].head_fact == Fact.make("far", ["n0", "b", 8])

    def test_self_join_does_not_duplicate_derivations(self):
        evaluator, store = make_evaluator("r1 pair(@S, A, B) :- item(@S, A), item(@S, B).")
        insert(evaluator, store, Fact.make("item", ["n0", 1]))
        effects = insert(evaluator, store, Fact.make("item", ["n0", 2]))
        heads = sorted(str(e.head_fact) for e in effects)
        # (1,2), (2,1) and (2,2) are all new; (1,1) was derived on first insert.
        assert len(effects) == 3
        assert len(set(heads)) == 3

    def test_remote_head_location_reported(self):
        evaluator, store = make_evaluator("r1 echo(@D, S) :- link(@S, D).", node="n0")
        effects = insert(evaluator, store, Fact.make("link", ["n0", "n9"]))
        assert effects[0].head_location == "n9"


class TestAggregates:
    AGG = "r1 best(@S, D, min<C>) :- path(@S, D, C)."

    def test_min_aggregate_tracks_group_minimum(self):
        evaluator, store = make_evaluator(self.AGG)
        effects = insert(evaluator, store, Fact.make("path", ["n0", "d", 5]))
        assert effects[0].head_fact == Fact.make("best", ["n0", "d", 5])
        effects = insert(evaluator, store, Fact.make("path", ["n0", "d", 3]))
        signs = [(e.sign, e.head_fact.values[2]) for e in effects]
        assert (-1, 5) in signs and (+1, 3) in signs

    def test_worse_value_does_not_change_aggregate(self):
        evaluator, store = make_evaluator(self.AGG)
        insert(evaluator, store, Fact.make("path", ["n0", "d", 3]))
        assert insert(evaluator, store, Fact.make("path", ["n0", "d", 9])) == []

    def test_deleting_minimum_falls_back_to_next_best(self):
        evaluator, store = make_evaluator(self.AGG)
        insert(evaluator, store, Fact.make("path", ["n0", "d", 3]))
        insert(evaluator, store, Fact.make("path", ["n0", "d", 9]))
        effects = delete(evaluator, store, Fact.make("path", ["n0", "d", 3]))
        signs = [(e.sign, e.head_fact.values[2]) for e in effects]
        assert (-1, 3) in signs and (+1, 9) in signs

    def test_deleting_last_entry_removes_aggregate(self):
        evaluator, store = make_evaluator(self.AGG)
        insert(evaluator, store, Fact.make("path", ["n0", "d", 3]))
        effects = delete(evaluator, store, Fact.make("path", ["n0", "d", 3]))
        assert [e.sign for e in effects] == [-1]
        assert evaluator.firing_count == 0

    def test_groups_are_independent(self):
        evaluator, store = make_evaluator(self.AGG)
        insert(evaluator, store, Fact.make("path", ["n0", "d1", 3]))
        effects = insert(evaluator, store, Fact.make("path", ["n0", "d2", 7]))
        assert effects[0].head_fact == Fact.make("best", ["n0", "d2", 7])

    def test_count_star_aggregate(self):
        evaluator, store = make_evaluator("r1 total(@S, count<*>) :- item(@S, X).")
        insert(evaluator, store, Fact.make("item", ["n0", "a"]))
        effects = insert(evaluator, store, Fact.make("item", ["n0", "b"]))
        values = [e.head_fact.values[1] for e in effects if e.sign > 0]
        assert values == [2]

    def test_sum_aggregate(self):
        evaluator, store = make_evaluator("r1 total(@S, sum<C>) :- item(@S, C).")
        insert(evaluator, store, Fact.make("item", ["n0", 2]))
        effects = insert(evaluator, store, Fact.make("item", ["n0", 5]))
        assert any(e.sign > 0 and e.head_fact.values[1] == 7 for e in effects)

    def test_max_aggregate_contributing_facts(self):
        evaluator, store = make_evaluator("r1 worst(@S, max<C>) :- item(@S, C).")
        insert(evaluator, store, Fact.make("item", ["n0", 2]))
        effects = insert(evaluator, store, Fact.make("item", ["n0", 8]))
        positive = [e for e in effects if e.sign > 0][0]
        assert positive.body_facts == (Fact.make("item", ["n0", 8]),)


class TestNegation:
    NEG = """
    r1 candidate(@S, D) :- offer(@S, D), !blocked(@S, D).
    """

    def test_negative_literal_blocks_firing(self):
        evaluator, store = make_evaluator(self.NEG)
        insert(evaluator, store, Fact.make("blocked", ["n0", "d"]))
        assert insert(evaluator, store, Fact.make("offer", ["n0", "d"])) == []

    def test_firing_when_no_blocker(self):
        evaluator, store = make_evaluator(self.NEG)
        effects = insert(evaluator, store, Fact.make("offer", ["n0", "d"]))
        assert effects[0].head_fact == Fact.make("candidate", ["n0", "d"])

    def test_later_blocker_retracts_existing_firing(self):
        evaluator, store = make_evaluator(self.NEG)
        insert(evaluator, store, Fact.make("offer", ["n0", "d"]))
        effects = insert(evaluator, store, Fact.make("blocked", ["n0", "d"]))
        assert [e.sign for e in effects] == [-1]
        assert effects[0].head_fact == Fact.make("candidate", ["n0", "d"])

    def test_removing_blocker_rederives(self):
        evaluator, store = make_evaluator(self.NEG)
        insert(evaluator, store, Fact.make("blocked", ["n0", "d"]))
        insert(evaluator, store, Fact.make("offer", ["n0", "d"]))
        effects = delete(evaluator, store, Fact.make("blocked", ["n0", "d"]))
        assert [e.sign for e in effects] == [+1]
        assert effects[0].head_fact == Fact.make("candidate", ["n0", "d"])

    def test_unrelated_blocker_does_not_retract(self):
        evaluator, store = make_evaluator(self.NEG)
        insert(evaluator, store, Fact.make("offer", ["n0", "d"]))
        assert insert(evaluator, store, Fact.make("blocked", ["n0", "other"])) == []
