"""Tests for the per-node tuple store."""

import pytest

from repro.engine.store import BASE_DERIVATION, TupleStore
from repro.engine.tuples import Fact


@pytest.fixture
def store():
    return TupleStore()


def link(a, b, c=1):
    return Fact.make("link", [a, b, c])


class TestDerivationCounting:
    def test_add_first_derivation_reports_new(self, store):
        assert store.add_derivation(link("a", "b"), "d1") is True
        assert store.contains(link("a", "b"))

    def test_second_derivation_not_new(self, store):
        store.add_derivation(link("a", "b"), "d1")
        assert store.add_derivation(link("a", "b"), "d2") is False
        assert store.derivation_count(link("a", "b")) == 2

    def test_fact_survives_until_last_derivation_removed(self, store):
        fact = link("a", "b")
        store.add_derivation(fact, "d1")
        store.add_derivation(fact, "d2")
        assert store.remove_derivation(fact, "d1") is False
        assert store.contains(fact)
        assert store.remove_derivation(fact, "d2") is True
        assert not store.contains(fact)

    def test_removing_unknown_derivation_is_noop(self, store):
        fact = link("a", "b")
        assert store.remove_derivation(fact, "ghost") is False
        store.add_derivation(fact, "d1")
        assert store.remove_derivation(fact, "ghost") is False
        assert store.contains(fact)

    def test_base_derivation_constant(self, store):
        fact = link("a", "b")
        store.add_derivation(fact, BASE_DERIVATION)
        assert BASE_DERIVATION in store.derivations(fact)

    def test_remove_fact_returns_derivations(self, store):
        fact = link("a", "b")
        store.add_derivation(fact, "d1")
        store.add_derivation(fact, "d2")
        assert store.remove_fact(fact) == {"d1", "d2"}
        assert not store.contains(fact)
        assert store.remove_fact(fact) == set()


class TestScansAndIndexes:
    def test_facts_by_relation(self, store):
        store.add_derivation(link("a", "b"), "d1")
        store.add_derivation(link("a", "c"), "d2")
        store.add_derivation(Fact.make("path", ["a", "c", 2]), "d3")
        assert len(list(store.facts("link"))) == 2
        assert store.count("link") == 2
        assert store.count() == 3
        assert store.relations() == ["link", "path"]

    def test_matching_uses_and_maintains_index(self, store):
        store.add_derivation(link("a", "b"), "d1")
        store.add_derivation(link("a", "c"), "d2")
        store.add_derivation(link("b", "c"), "d3")
        matched = list(store.matching("link", {0: "a"}))
        assert {fact.values[1] for fact in matched} == {"b", "c"}
        # Index maintained incrementally after insertion and deletion.
        store.add_derivation(link("a", "d"), "d4")
        assert len(list(store.matching("link", {0: "a"}))) == 3
        store.remove_derivation(link("a", "b"), "d1")
        assert len(list(store.matching("link", {0: "a"}))) == 2

    def test_matching_on_multiple_positions(self, store):
        store.add_derivation(link("a", "b", 1), "d1")
        store.add_derivation(link("a", "b", 2), "d2")
        matched = list(store.matching("link", {0: "a", 1: "b"}))
        assert len(matched) == 2
        assert list(store.matching("link", {0: "a", 2: 2})) == [link("a", "b", 2)]

    def test_matching_empty_bound_scans_everything(self, store):
        store.add_derivation(link("a", "b"), "d1")
        assert list(store.matching("link", {})) == [link("a", "b")]

    def test_matching_unknown_relation_is_empty(self, store):
        assert list(store.matching("nothing", {0: "a"})) == []


class TestSnapshot:
    def test_snapshot_contains_counts(self, store):
        fact = link("a", "b")
        store.add_derivation(fact, "d1")
        store.add_derivation(fact, "d2")
        snapshot = store.snapshot()
        assert snapshot["link"] == [(("a", "b", 1), 2)]
