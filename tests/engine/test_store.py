"""Tests for the per-node tuple store and its sharded variant."""

import random

import pytest

from repro.engine.store import (
    BASE_DERIVATION,
    SerialShardExecutor,
    ShardedTupleStore,
    ThreadShardExecutor,
    TupleStore,
)
from repro.engine.tuples import Fact


@pytest.fixture
def store():
    return TupleStore()


def link(a, b, c=1):
    return Fact.make("link", [a, b, c])


class TestDerivationCounting:
    def test_add_first_derivation_reports_new(self, store):
        assert store.add_derivation(link("a", "b"), "d1") is True
        assert store.contains(link("a", "b"))

    def test_second_derivation_not_new(self, store):
        store.add_derivation(link("a", "b"), "d1")
        assert store.add_derivation(link("a", "b"), "d2") is False
        assert store.derivation_count(link("a", "b")) == 2

    def test_fact_survives_until_last_derivation_removed(self, store):
        fact = link("a", "b")
        store.add_derivation(fact, "d1")
        store.add_derivation(fact, "d2")
        assert store.remove_derivation(fact, "d1") is False
        assert store.contains(fact)
        assert store.remove_derivation(fact, "d2") is True
        assert not store.contains(fact)

    def test_removing_unknown_derivation_is_noop(self, store):
        fact = link("a", "b")
        assert store.remove_derivation(fact, "ghost") is False
        store.add_derivation(fact, "d1")
        assert store.remove_derivation(fact, "ghost") is False
        assert store.contains(fact)

    def test_base_derivation_constant(self, store):
        fact = link("a", "b")
        store.add_derivation(fact, BASE_DERIVATION)
        assert BASE_DERIVATION in store.derivations(fact)

    def test_remove_fact_returns_derivations(self, store):
        fact = link("a", "b")
        store.add_derivation(fact, "d1")
        store.add_derivation(fact, "d2")
        assert store.remove_fact(fact) == {"d1", "d2"}
        assert not store.contains(fact)
        assert store.remove_fact(fact) == set()


class TestScansAndIndexes:
    def test_facts_by_relation(self, store):
        store.add_derivation(link("a", "b"), "d1")
        store.add_derivation(link("a", "c"), "d2")
        store.add_derivation(Fact.make("path", ["a", "c", 2]), "d3")
        assert len(list(store.facts("link"))) == 2
        assert store.count("link") == 2
        assert store.count() == 3
        assert store.relations() == ["link", "path"]

    def test_matching_uses_and_maintains_index(self, store):
        store.add_derivation(link("a", "b"), "d1")
        store.add_derivation(link("a", "c"), "d2")
        store.add_derivation(link("b", "c"), "d3")
        matched = list(store.matching("link", {0: "a"}))
        assert {fact.values[1] for fact in matched} == {"b", "c"}
        # Index maintained incrementally after insertion and deletion.
        store.add_derivation(link("a", "d"), "d4")
        assert len(list(store.matching("link", {0: "a"}))) == 3
        store.remove_derivation(link("a", "b"), "d1")
        assert len(list(store.matching("link", {0: "a"}))) == 2

    def test_matching_on_multiple_positions(self, store):
        store.add_derivation(link("a", "b", 1), "d1")
        store.add_derivation(link("a", "b", 2), "d2")
        matched = list(store.matching("link", {0: "a", 1: "b"}))
        assert len(matched) == 2
        assert list(store.matching("link", {0: "a", 2: 2})) == [link("a", "b", 2)]

    def test_matching_empty_bound_scans_everything(self, store):
        store.add_derivation(link("a", "b"), "d1")
        assert list(store.matching("link", {})) == [link("a", "b")]

    def test_matching_unknown_relation_is_empty(self, store):
        assert list(store.matching("nothing", {0: "a"})) == []


class TestSnapshot:
    def test_snapshot_contains_counts(self, store):
        fact = link("a", "b")
        store.add_derivation(fact, "d1")
        store.add_derivation(fact, "d2")
        snapshot = store.snapshot()
        assert snapshot["link"] == [(("a", "b", 1), 2)]


class TestRelationsMemoization:
    """relations() is memoized; its sorted order drives the deterministic merge."""

    def test_iteration_order_is_sorted_and_stable(self, store):
        for relation in ("path", "link", "minCost", "bestHop"):
            store.add_derivation(Fact.make(relation, ["a", "b"]), "d1")
        expected = ["bestHop", "link", "minCost", "path"]
        assert store.relations() == expected
        # Memoized call returns the same content, and the caller mutating the
        # returned list must not corrupt later calls.
        first = store.relations()
        first.append("bogus")
        assert store.relations() == expected

    def test_cache_tracks_empty_transitions(self, store):
        store.add_derivation(link("a", "b"), "d1")
        store.add_derivation(Fact.make("path", ["a", "b", 2]), "d2")
        assert store.relations() == ["link", "path"]
        # Adding more facts to a non-empty relation keeps the cached answer.
        store.add_derivation(link("a", "c"), "d3")
        assert store.relations() == ["link", "path"]
        # Draining a relation removes it; re-populating restores it.
        store.remove_derivation(link("a", "b"), "d1")
        store.remove_derivation(link("a", "c"), "d3")
        assert store.relations() == ["path"]
        store.add_derivation(link("x", "y"), "d4")
        assert store.relations() == ["link", "path"]
        store.remove_fact(Fact.make("path", ["a", "b", 2]))
        assert store.relations() == ["link"]

    def test_empty_store_short_circuits(self):
        assert TupleStore().relations() == []


# ---------------------------------------------------------------------------
# Sharded store
# ---------------------------------------------------------------------------


def distinct_shard_facts(sharded, count, relation="link"):
    """Facts assigned to *count* pairwise-distinct shards of *sharded*."""
    found = {}
    for n in range(1000):
        fact = Fact.make(relation, [f"s{n}", f"t{n}", 1])
        found.setdefault(sharded.shard_index(fact), fact)
        if len(found) == count:
            return [found[index] for index in sorted(found)]
    raise AssertionError(f"could not find facts on {count} distinct shards")


class TestShardedStore:
    def test_shard_assignment_is_stable(self):
        first = ShardedTupleStore(4)
        second = ShardedTupleStore(4)
        for n in range(50):
            fact = Fact.make("link", [f"a{n}", f"b{n}", n])
            assert first.shard_index(fact) == second.shard_index(fact)
            assert first.shard_index(fact) == first.shard_index(fact)
            assert 0 <= first.shard_index(fact) < 4

    def test_all_derivations_of_a_fact_share_a_shard(self):
        sharded = ShardedTupleStore(4)
        fact = link("a", "b")
        sharded.add_derivation(fact, "d1")
        sharded.add_derivation(fact, "d2")
        owning = sharded.shard_of(fact)
        assert owning.derivations(fact) == {"d1", "d2"}
        assert sum(shard.count() for shard in sharded.shards) == 1
        assert sharded.derivation_count(fact) == 2

    def test_key_fn_routes_same_key_rows_to_one_shard(self):
        # Partition by the (source, destination) key columns: all cost
        # versions of one keyed link row must stay on one shard, so key-based
        # overwrite (delete old row, insert new row) never crosses shards.
        sharded = ShardedTupleStore(4, key_fn=lambda fact: fact.values[:2])
        for cost in range(10):
            assert sharded.shard_index(link("a", "b", cost)) == sharded.shard_index(
                link("a", "b", 0)
            )

    def test_cross_shard_index_lookups_match_flat_store(self):
        sharded = ShardedTupleStore(4)
        flat = TupleStore()
        rng = random.Random(5)
        for n in range(60):
            fact = Fact.make("link", [f"a{rng.randrange(4)}", f"b{n}", rng.randrange(3)])
            sharded.add_derivation(fact, "d1")
            flat.add_derivation(fact, "d1")
        sharded.prepare_index("link", (0,))
        for source in ("a0", "a1", "a2", "a3"):
            assert set(sharded.matching("link", {0: source})) == set(
                flat.matching("link", {0: source})
            )
        assert set(sharded.matching("link", {0: "a1", 2: 1})) == set(
            flat.matching("link", {0: "a1", 2: 1})
        )
        assert sharded.relations() == flat.relations()
        assert sharded.count() == flat.count()
        assert sharded.snapshot() == flat.snapshot()

    @pytest.mark.parametrize("executor", [None, "serial", "threaded"])
    def test_delta_batches_bit_identical_to_flat_store(self, executor):
        executors = {
            None: None,
            "serial": SerialShardExecutor(),
            "threaded": ThreadShardExecutor(2),
        }
        sharded = ShardedTupleStore(4, executor=executors[executor])
        flat = TupleStore()
        rng = random.Random(17)
        derivations = [f"d{n}" for n in range(4)]
        for _ in range(5):
            batch = []
            for _ in range(40):
                sign = 1 if rng.random() < 0.6 else -1
                fact = Fact.make("link", [f"a{rng.randrange(5)}", f"b{rng.randrange(5)}", 1])
                batch.append((sign, fact, rng.choice(derivations)))
            assert sharded.apply_delta_batch(list(batch)) == flat.apply_delta_batch(
                list(batch)
            )
            assert sharded.snapshot() == flat.snapshot()
        if executor == "threaded":
            executors[executor].close()

    def test_last_derivation_deleted_on_different_shard_than_first_insertion(self):
        # An overwrite-style batch touching two shards: the old row's last
        # derivation disappears on one shard while the replacement row first
        # appears on another; the merged net transitions must interleave the
        # shards' reports in global batch order, exactly like the flat store.
        sharded = ShardedTupleStore(3)
        old_row, new_row = distinct_shard_facts(sharded, 2)
        assert sharded.shard_index(old_row) != sharded.shard_index(new_row)

        newly, gone, applied = sharded.apply_delta_batch(
            [(+1, old_row, "d1"), (+1, old_row, "d2")]
        )
        assert (newly, gone, applied) == ([old_row], [], [True, True])

        # First delete drops one derivation (no disappearance), the
        # cross-shard insert and the final delete land in one batch.
        newly, gone, applied = sharded.apply_delta_batch(
            [(-1, old_row, "d1"), (+1, new_row, "d3"), (-1, old_row, "d2")]
        )
        assert newly == [new_row]
        assert gone == [old_row]
        assert applied == [True, True, True]
        assert not sharded.contains(old_row)
        assert sharded.derivation_count(new_row) == 1

        # Deleting a derivation that was never applied stays idempotent
        # across the shard boundary.
        newly, gone, applied = sharded.apply_delta_batch([(-1, old_row, "ghost")])
        assert (newly, gone, applied) == ([], [], [False])
