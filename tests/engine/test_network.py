"""Tests for the simulated network and traffic accounting."""

import pytest

from repro.errors import UnknownNodeError
from repro.engine.messages import CATEGORY_CONTROL, CATEGORY_TUPLE, Message
from repro.engine.network import Network
from repro.engine.simulator import Simulator


class Recorder:
    def __init__(self):
        self.received = []

    def receive(self, message):
        self.received.append(message)


@pytest.fixture
def network():
    simulator = Simulator()
    network = Network(simulator, default_latency=0.5)
    return simulator, network


class TestDelivery:
    def test_message_delivered_after_link_latency(self, network):
        simulator, net = network
        a, b = Recorder(), Recorder()
        net.register("a", a)
        net.register("b", b)
        net.add_link("a", "b", latency=0.2)
        net.send(Message(sender="a", receiver="b", category=CATEGORY_TUPLE, payload="hi"))
        assert b.received == []
        simulator.run()
        assert len(b.received) == 1
        assert simulator.now == pytest.approx(0.2)

    def test_default_latency_used_without_link(self, network):
        simulator, net = network
        net.register("a", Recorder())
        net.register("b", Recorder())
        net.send(Message(sender="a", receiver="b", category=CATEGORY_CONTROL, payload="x"))
        simulator.run()
        assert simulator.now == pytest.approx(0.5)

    def test_unknown_receiver_rejected(self, network):
        _, net = network
        net.register("a", Recorder())
        with pytest.raises(UnknownNodeError):
            net.send(Message(sender="a", receiver="ghost", category=CATEGORY_TUPLE, payload=1))

    def test_delivery_log_records_time_and_message(self, network):
        simulator, net = network
        net.register("a", Recorder())
        net.register("b", Recorder())
        net.send(Message(sender="a", receiver="b", category=CATEGORY_TUPLE, payload="x"))
        simulator.run()
        log = net.delivery_log()
        assert len(log) == 1
        assert log[0][0] == pytest.approx(0.5)


class TestTopologyManagement:
    def test_neighbors_follow_links(self, network):
        _, net = network
        for name in ("a", "b", "c"):
            net.register(name, Recorder())
        net.add_link("a", "b")
        net.add_link("a", "c")
        assert net.neighbors("a") == ["b", "c"]
        net.remove_link("a", "b")
        assert net.neighbors("a") == ["c"]

    def test_membership(self, network):
        _, net = network
        net.register("a", Recorder())
        assert "a" in net
        assert "b" not in net
        assert net.node_ids() == ["a"]


class TestTrafficStats:
    def test_counts_by_category(self, network):
        simulator, net = network
        net.register("a", Recorder())
        net.register("b", Recorder())
        net.send(Message(sender="a", receiver="b", category=CATEGORY_TUPLE, payload="x"))
        net.send(Message(sender="a", receiver="b", category=CATEGORY_CONTROL, payload="y"))
        net.send(Message(sender="b", receiver="a", category=CATEGORY_TUPLE, payload="z"))
        stats = net.stats
        assert stats.messages == 3
        assert stats.category_count(CATEGORY_TUPLE) == 2
        assert stats.category_count(CATEGORY_CONTROL) == 1
        assert stats.bytes > 0
        snapshot = stats.snapshot()
        assert snapshot["messages"] == 3

    def test_reset_returns_previous_stats(self, network):
        simulator, net = network
        net.register("a", Recorder())
        net.register("b", Recorder())
        net.send(Message(sender="a", receiver="b", category=CATEGORY_TUPLE, payload="x"))
        old = net.reset_stats()
        assert old.messages == 1
        assert net.stats.messages == 0
