"""Tests for the discrete-event simulator."""

import pytest

from repro.errors import SimulationError
from repro.engine.simulator import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(0.5, lambda: order.append("late"))
        simulator.schedule(0.1, lambda: order.append("early"))
        simulator.run()
        assert order == ["early", "late"]
        assert simulator.now == pytest.approx(0.5)

    def test_same_time_events_run_in_scheduling_order(self):
        simulator = Simulator()
        order = []
        for index in range(5):
            simulator.schedule(1.0, lambda i=index: order.append(i))
        simulator.run()
        assert order == [0, 1, 2, 3, 4]

    def test_events_can_schedule_more_events(self):
        simulator = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                simulator.schedule(1.0, lambda: chain(depth + 1))

        simulator.schedule(0.0, lambda: chain(0))
        simulator.run()
        assert seen == [0, 1, 2, 3]
        assert simulator.now == pytest.approx(3.0)

    def test_schedule_at_absolute_time(self):
        simulator = Simulator()
        fired = []
        simulator.schedule_at(2.5, lambda: fired.append(simulator.now))
        simulator.run()
        assert fired == [2.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_time_rejected(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.schedule_at(0.5, lambda: None)


class TestRunControl:
    def test_run_until_time_leaves_future_events_pending(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.0, lambda: fired.append(1))
        simulator.schedule(5.0, lambda: fired.append(5))
        simulator.run(until=2.0)
        assert fired == [1]
        assert simulator.pending_events == 1
        assert simulator.now == pytest.approx(2.0)

    def test_max_events_cap(self):
        simulator = Simulator()
        for _ in range(10):
            simulator.schedule(1.0, lambda: None)
        executed = simulator.run(max_events=4)
        assert executed == 4
        assert simulator.pending_events == 6

    def test_run_to_quiescence_raises_on_runaway(self):
        simulator = Simulator()

        def forever():
            simulator.schedule(0.1, forever)

        simulator.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            simulator.run_to_quiescence(max_events=50)

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_processed_event_counter(self):
        simulator = Simulator()
        simulator.schedule(0.1, lambda: None)
        simulator.schedule(0.2, lambda: None)
        simulator.run()
        assert simulator.processed_events == 2
