"""Tests for the waypoint mobility model."""

import math

from repro.engine.mobility import LinkEvent, WaypointMobilityModel


def make_model(**kwargs):
    defaults = dict(
        node_names=[f"m{i}" for i in range(6)],
        field_size=50.0,
        radio_range=25.0,
        seed=3,
    )
    defaults.update(kwargs)
    return WaypointMobilityModel(**defaults)


class TestGeometry:
    def test_positions_within_field(self):
        model = make_model()
        for x, y in model.positions().values():
            assert 0.0 <= x <= 50.0
            assert 0.0 <= y <= 50.0

    def test_in_range_symmetry(self):
        model = make_model()
        assert model.in_range("m0", "m1") == model.in_range("m1", "m0")

    def test_current_links_consistent_with_in_range(self):
        model = make_model()
        links = model.current_links()
        for a, b in links:
            assert model.in_range(a, b)

    def test_determinism(self):
        a = make_model(seed=9)
        b = make_model(seed=9)
        assert a.positions() == b.positions()
        assert a.current_links() == b.current_links()


class TestMovement:
    def test_step_changes_positions_but_stays_in_field(self):
        model = make_model()
        before = model.positions()
        model.step(5.0)
        after = model.positions()
        assert before != after
        for x, y in after.values():
            assert -1e-9 <= x <= 50.0 + 1e-9
            assert -1e-9 <= y <= 50.0 + 1e-9

    def test_events_start_with_initial_links_up(self):
        model = make_model()
        events = list(model.events(duration=5.0, dt=1.0))
        initial = [event for event in events if event.time == 0.0]
        assert all(event.kind == "up" for event in initial)
        assert len(initial) == len(make_model().current_links())

    def test_events_alternate_consistently_per_link(self):
        model = make_model(seed=11)
        events = list(model.events(duration=30.0, dt=1.0))
        state = {}
        for event in events:
            key = (event.source, event.target)
            if event.kind == "up":
                assert state.get(key, "down") == "down"
                state[key] = "up"
            else:
                assert state.get(key) == "up"
                state[key] = "down"

    def test_event_str(self):
        event = LinkEvent(1.5, "up", "a", "b")
        assert "up" in str(event) and "a" in str(event)
