"""Unit tests for the process-pool backend's lifecycle and failure modes.

The bit-identical equivalence guarantees live in the property suite
(``tests/property/test_property_backends.py``); this file pins the parts a
churn sweep doesn't reach: the stability of the node→worker assignment, the
attach lifecycle, crash-of-worker reporting, graceful degradation without a
runtime, and the durable/process combination (workers fork *before* the WAL
opens, so recovery replays against a process-backend runtime too).
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.engine import topology
from repro.engine.backends import ProcessPoolBackend, resolve_backend
from repro.engine.runtime import NetTrailsRuntime
from repro.engine.simulator import Simulator
from repro.errors import EngineError
from repro.protocols import mincost


def build_runtime(**kwargs):
    return NetTrailsRuntime(mincost.SOURCE, topology.line(3), **kwargs)


class TestAssignment:
    def test_assignment_is_stable_and_seeded(self):
        node_ids = [f"n{i}" for i in range(50)]
        first = ProcessPoolBackend(workers=4).assignment_for(node_ids)
        second = ProcessPoolBackend(workers=4).assignment_for(node_ids)
        assert first == second, "same seed + workers must map nodes identically"
        assert set(first.values()) <= set(range(4))
        reseeded = ProcessPoolBackend(workers=4, seed=1).assignment_for(node_ids)
        assert reseeded != first, "a different seed should reshuffle the pinning"

    def test_every_worker_index_is_reachable(self):
        backend = ProcessPoolBackend(workers=3)
        assignment = backend.assignment_for([f"n{i}" for i in range(200)])
        assert set(assignment.values()) == {0, 1, 2}


class TestLifecycle:
    def test_attach_twice_raises(self):
        with build_runtime(backend="process", backend_workers=1) as runtime:
            with pytest.raises(EngineError, match="one runtime"):
                runtime.backend.attach(runtime)

    def test_close_is_idempotent_and_reaps_workers(self):
        runtime = build_runtime(backend="process", backend_workers=2)
        processes = [channel.process for channel in runtime.backend._channels]
        assert len(processes) == 2 and all(p.is_alive() for p in processes)
        runtime.close()
        assert all(not p.is_alive() for p in processes)
        runtime.close()  # second close is a no-op, not an error

    def test_unattached_backend_degrades_to_thread_behaviour(self):
        # A bare simulator never calls attach: no workers fork and waves run
        # on the inherited thread-pool path.
        backend = ProcessPoolBackend(workers=2)
        simulator = Simulator(backend=backend)
        fired = []
        for i in range(4):
            simulator.schedule(1.0, lambda i=i: fired.append(i), key=f"k{i}")
        assert simulator.run() == 4
        assert sorted(fired) == [0, 1, 2, 3]
        assert backend._channels == []
        backend.close()

    def test_resolve_backend_builds_process_instance(self):
        backend = resolve_backend("process", workers=3)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.workers == 3


class TestFailureModes:
    def test_killed_worker_raises_loudly_on_next_drain(self):
        runtime = build_runtime(backend="process", backend_workers=1)
        try:
            runtime.seed_links(run=True)
            process = runtime.backend._channels[0].process
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=5.0)
            with pytest.raises(EngineError, match="died while"):
                runtime.insert("link", ["n0", "n2", 7])
                runtime.run_to_quiescence()
        finally:
            runtime.close()

    def test_worker_side_failure_is_shipped_home(self):
        # A link with a non-numeric cost makes the evaluator's comparison
        # blow up mid-drain; the worker ships the error back in its reply
        # envelope (and survives) instead of dying with the wave.
        runtime = build_runtime(backend="process", backend_workers=1)
        try:
            runtime.seed_links(run=True)
            node = runtime.nodes["n0"]
            from repro.engine.node import _PendingUpdate
            from repro.engine.store import BASE_DERIVATION
            from repro.engine.tuples import Fact

            node._queue.append(
                _PendingUpdate(
                    +1, Fact.make("link", ("n0", "n1", "boom")), BASE_DERIVATION, None
                )
            )
            with pytest.raises(EngineError, match="failed draining"):
                node._drain()
            process = runtime.backend._channels[0].process
            assert process.is_alive(), "a shipped error must not kill the worker"
        finally:
            runtime.close()


class TestDurableCombination:
    def test_process_backend_journals_and_recovers(self, tmp_path):
        from repro.durability.recovery import RecoveryManager

        durable = tmp_path / "durable"
        with NetTrailsRuntime(
            mincost.SOURCE,
            topology.line(3),
            backend="process",
            backend_workers=2,
            durable_dir=durable,
            wal_fsync=False,
        ) as runtime:
            runtime.seed_links(run=True)
            runtime.insert("link", ["n0", "n2", 9])
            runtime.run_to_quiescence()
            expected = runtime.state("minCost")
        result = RecoveryManager(durable).recover(wal_fsync=False, attach=False)
        try:
            assert result.runtime.state("minCost") == expected
        finally:
            result.runtime.close()
