"""Tests for topology generators."""

import pytest

from repro.errors import EngineError
from repro.engine import topology


class TestTopologyBasics:
    def test_add_edge_normalises_direction(self):
        net = topology.Topology(name="t")
        net.add_edge("b", "a", 2.0)
        assert net.has_edge("a", "b")
        assert net.cost("a", "b") == 2.0

    def test_self_loop_rejected(self):
        with pytest.raises(EngineError):
            topology.Topology(name="t").add_edge("a", "a")

    def test_directed_edges_contains_both_directions(self):
        net = topology.line(3)
        directed = net.directed_edges()
        assert ("n0", "n1", 1.0) in directed and ("n1", "n0", 1.0) in directed
        assert len(directed) == 2 * net.edge_count()

    def test_neighbors(self):
        net = topology.star(4)
        assert net.neighbors("n0") == ["n1", "n2", "n3"]
        assert net.neighbors("n2") == ["n0"]

    def test_remove_edge(self):
        net = topology.ring(4)
        net.remove_edge("n0", "n1")
        assert not net.has_edge("n0", "n1")


class TestGenerators:
    def test_line_ring_star_shapes(self):
        assert topology.line(5).edge_count() == 4
        assert topology.ring(5).edge_count() == 5
        assert topology.star(5).edge_count() == 4

    def test_grid_shape(self):
        net = topology.grid(3, 4)
        assert net.node_count() == 12
        assert net.edge_count() == 3 * 3 + 2 * 4  # horizontal + vertical edges
        assert net.is_connected()

    def test_random_connected_is_connected_and_deterministic(self):
        a = topology.random_connected(12, edge_probability=0.2, seed=42)
        b = topology.random_connected(12, edge_probability=0.2, seed=42)
        assert a.is_connected()
        assert a.edges == b.edges

    def test_random_connected_different_seeds_differ(self):
        a = topology.random_connected(12, edge_probability=0.2, seed=1)
        b = topology.random_connected(12, edge_probability=0.2, seed=2)
        assert a.edges != b.edges

    def test_isp_hierarchy_structure(self):
        net = topology.isp_hierarchy(tier1_count=3, tier2_per_tier1=2, stubs_per_tier2=2)
        assert net.is_connected()
        tier1 = [node for node in net.nodes if node.startswith("t1_")]
        stubs = [node for node in net.nodes if node.startswith("stub_")]
        assert len(tier1) == 3
        assert len(stubs) == 3 * 2 * 2
        # tier-1 clique
        assert net.has_edge("t1_0", "t1_1") and net.has_edge("t1_1", "t1_2")

    def test_from_edges(self):
        net = topology.from_edges([("a", "b", 1.0), ("b", "c", 2.0)], name="custom")
        assert net.node_count() == 3
        assert net.cost("b", "c") == 2.0


class TestShortestPaths:
    def test_matches_known_values_on_ring(self):
        net = topology.ring(5)
        costs = net.shortest_path_costs()
        assert costs[("n0", "n1")] == 1.0
        assert costs[("n0", "n2")] == 2.0
        # going the other way round is 2 hops as well
        assert costs[("n0", "n3")] == 2.0

    def test_respects_edge_weights(self):
        net = topology.from_edges([("a", "b", 10.0), ("a", "c", 1.0), ("c", "b", 1.0)])
        costs = net.shortest_path_costs()
        assert costs[("a", "b")] == 2.0

    def test_disconnected_pairs_absent(self):
        net = topology.Topology(name="two-islands")
        net.add_edge("a", "b", 1.0)
        net.add_edge("c", "d", 1.0)
        costs = net.shortest_path_costs()
        assert ("a", "c") not in costs
        assert not net.is_connected()
