"""Tests for topology generators."""

import pytest

from repro.errors import EngineError
from repro.engine import topology


class TestTopologyBasics:
    def test_add_edge_normalises_direction(self):
        net = topology.Topology(name="t")
        net.add_edge("b", "a", 2.0)
        assert net.has_edge("a", "b")
        assert net.cost("a", "b") == 2.0

    def test_self_loop_rejected(self):
        with pytest.raises(EngineError):
            topology.Topology(name="t").add_edge("a", "a")

    def test_directed_edges_contains_both_directions(self):
        net = topology.line(3)
        directed = net.directed_edges()
        assert ("n0", "n1", 1.0) in directed and ("n1", "n0", 1.0) in directed
        assert len(directed) == 2 * net.edge_count()

    def test_neighbors(self):
        net = topology.star(4)
        assert net.neighbors("n0") == ["n1", "n2", "n3"]
        assert net.neighbors("n2") == ["n0"]

    def test_remove_edge(self):
        net = topology.ring(4)
        net.remove_edge("n0", "n1")
        assert not net.has_edge("n0", "n1")


class TestGenerators:
    def test_line_ring_star_shapes(self):
        assert topology.line(5).edge_count() == 4
        assert topology.ring(5).edge_count() == 5
        assert topology.star(5).edge_count() == 4

    def test_grid_shape(self):
        net = topology.grid(3, 4)
        assert net.node_count() == 12
        assert net.edge_count() == 3 * 3 + 2 * 4  # horizontal + vertical edges
        assert net.is_connected()

    def test_random_connected_is_connected_and_deterministic(self):
        a = topology.random_connected(12, edge_probability=0.2, seed=42)
        b = topology.random_connected(12, edge_probability=0.2, seed=42)
        assert a.is_connected()
        assert a.edges == b.edges

    def test_random_connected_different_seeds_differ(self):
        a = topology.random_connected(12, edge_probability=0.2, seed=1)
        b = topology.random_connected(12, edge_probability=0.2, seed=2)
        assert a.edges != b.edges

    def test_isp_hierarchy_structure(self):
        net = topology.isp_hierarchy(tier1_count=3, tier2_per_tier1=2, stubs_per_tier2=2)
        assert net.is_connected()
        tier1 = [node for node in net.nodes if node.startswith("t1_")]
        stubs = [node for node in net.nodes if node.startswith("stub_")]
        assert len(tier1) == 3
        assert len(stubs) == 3 * 2 * 2
        # tier-1 clique
        assert net.has_edge("t1_0", "t1_1") and net.has_edge("t1_1", "t1_2")

    def test_from_edges(self):
        net = topology.from_edges([("a", "b", 1.0), ("b", "c", 2.0)], name="custom")
        assert net.node_count() == 3
        assert net.cost("b", "c") == 2.0


class TestShortestPaths:
    def test_matches_known_values_on_ring(self):
        net = topology.ring(5)
        costs = net.shortest_path_costs()
        assert costs[("n0", "n1")] == 1.0
        assert costs[("n0", "n2")] == 2.0
        # going the other way round is 2 hops as well
        assert costs[("n0", "n3")] == 2.0

    def test_respects_edge_weights(self):
        net = topology.from_edges([("a", "b", 10.0), ("a", "c", 1.0), ("c", "b", 1.0)])
        costs = net.shortest_path_costs()
        assert costs[("a", "b")] == 2.0

    def test_disconnected_pairs_absent(self):
        net = topology.Topology(name="two-islands")
        net.add_edge("a", "b", 1.0)
        net.add_edge("c", "d", 1.0)
        costs = net.shortest_path_costs()
        assert ("a", "c") not in costs
        assert not net.is_connected()


class TestAdjacencyIndex:
    def test_neighbors_track_adds_and_removes(self):
        net = topology.ring(5)
        assert net.neighbors("n0") == ["n1", "n4"]
        net.remove_edge("n0", "n1")
        assert net.neighbors("n0") == ["n4"]
        net.add_edge("n0", "n2")
        assert net.neighbors("n0") == ["n2", "n4"]
        assert net.degree("n0") == 2

    def test_index_rebuilt_from_explicit_edges(self):
        net = topology.Topology(name="t", nodes=["x"], edges={("a", "b"): 1.0})
        assert net.neighbors("a") == ["b"]
        assert net.neighbors("x") == []
        assert sorted(net.nodes) == ["a", "b", "x"]

    def test_deepcopy_keeps_a_private_index(self):
        import copy

        net = topology.star(4)
        clone = copy.deepcopy(net)
        clone.remove_edge("n0", "n1")
        assert net.neighbors("n1") == ["n0"]
        assert clone.neighbors("n1") == []

    def test_removing_absent_edge_is_a_noop(self):
        net = topology.line(3)
        net.remove_edge("n0", "n2")
        assert net.neighbors("n0") == ["n1"]

    def test_equality_ignores_the_index(self):
        one = topology.ring(4)
        two = topology.Topology(name=one.name, nodes=list(one.nodes), edges=dict(one.edges))
        assert one == two

    def test_matches_edge_scan_on_generated_graphs(self):
        net = topology.power_law(60, attach=2, seed=5)
        for node in net.nodes:
            scanned = sorted(
                b if a == node else a for (a, b) in net.edges if node in (a, b)
            )
            assert net.neighbors(node) == scanned


class TestPowerLaw:
    def test_connected_with_exact_node_count(self):
        net = topology.power_law(120, attach=2, seed=1)
        assert net.node_count() == 120
        assert net.is_connected()

    def test_degree_skew_has_hubs_and_stubs(self):
        net = topology.power_law(300, attach=2, seed=2)
        degrees = sorted(net.degree(node) for node in net.nodes)
        assert degrees[0] == 2  # late attachers keep exactly `attach` links
        assert degrees[-1] >= 5 * degrees[len(degrees) // 2], (
            "expected heavy-tailed hubs from preferential attachment"
        )

    def test_deterministic_per_seed(self):
        assert topology.power_law(80, seed=9).edges == topology.power_law(80, seed=9).edges
        assert topology.power_law(80, seed=9).edges != topology.power_law(80, seed=10).edges

    def test_validation(self):
        with pytest.raises(EngineError):
            topology.power_law(3, attach=3)
        with pytest.raises(EngineError):
            topology.power_law(10, attach=0)
