"""Tests for Fact and Schema."""

import pytest

from repro.errors import SchemaError
from repro.engine.tuples import Fact, Schema


class TestFact:
    def test_make_normalises_lists_to_tuples(self):
        fact = Fact.make("path", ["n0", "n1", [1, 2]])
        assert fact.values == ("n0", "n1", (1, 2))

    def test_facts_are_hashable_and_value_equal(self):
        a = Fact.make("link", ["n0", "n1", 1])
        b = Fact.make("link", ["n0", "n1", 1])
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_unsupported_value_type_rejected(self):
        with pytest.raises(SchemaError):
            Fact.make("bad", [object()])

    def test_unsupported_nested_type_rejected(self):
        with pytest.raises(SchemaError):
            Fact.make("bad", [({"a": 1},)])

    def test_rendering(self):
        fact = Fact.make("link", ["n0", "n1", 1.5])
        assert str(fact) == 'link("n0", "n1", 1.5)'

    def test_arity_and_value_access(self):
        fact = Fact.make("p", [1, 2, 3])
        assert fact.arity == 3
        assert fact.value(1) == 2


class TestSchema:
    def test_key_projection(self):
        schema = Schema(relation="link", arity=3, key_positions=(0, 1))
        fact = Fact.make("link", ["a", "b", 4])
        assert schema.key_of(fact) == ("a", "b")

    def test_location_projection(self):
        schema = Schema(relation="p", arity=2, location_index=1)
        assert schema.location_of(Fact.make("p", ["x", "home"])) == "home"

    def test_check_rejects_wrong_relation_and_arity(self):
        schema = Schema(relation="p", arity=2)
        with pytest.raises(SchemaError):
            schema.check(Fact.make("q", [1, 2]))
        with pytest.raises(SchemaError):
            schema.check(Fact.make("p", [1]))

    def test_invalid_key_position_rejected(self):
        with pytest.raises(SchemaError):
            Schema(relation="p", arity=2, key_positions=(5,))

    def test_invalid_attribute_name_count_rejected(self):
        with pytest.raises(SchemaError):
            Schema(relation="p", arity=2, attribute_names=("only_one",))


class TestFactHotPathCaches:
    """The message-size and shard-routing hot paths lean on Fact's cached
    repr/hash; the caches must be invisible (same bytes, same pickles)."""

    def test_repr_matches_dataclass_format_and_is_cached(self):
        fact = Fact.make("link", ["n0", "n1", 1.5])
        expected = "Fact(relation='link', values=('n0', 'n1', 1.5))"
        assert repr(fact) == expected
        assert repr(fact) is repr(fact), "second call must reuse the cached string"

    def test_pickle_round_trip_drops_caches(self):
        import pickle

        fact = Fact.make("path", ["a", "b", ("c", 2)])
        repr(fact), hash(fact)  # populate both caches
        clone = pickle.loads(pickle.dumps(fact))
        assert clone == fact and hash(clone) == hash(fact)
        assert repr(clone) == repr(fact)

    def test_slotted_message_dataclasses_pickle(self):
        """slots=True removes __dict__ from the wire dataclasses; pickling
        (the process backend's raw ablation path) must still round-trip."""
        import pickle

        from repro.engine.messages import ProvenanceTag, TupleDelta, TupleDeltaBatch

        tag = ProvenanceTag("r1", "prog", "n0", "rid0")
        delta = TupleDelta(+1, Fact.make("link", ["a", "b", 1]), "d0", tag)
        batch = TupleDeltaBatch((delta,))
        for original in (tag, delta, batch):
            assert pickle.loads(pickle.dumps(original)) == original

    def test_message_payload_reprs_match_dataclass_bytes(self):
        """Message.size_estimate reprs every payload; the hand-written
        __repr__ overrides must emit the exact dataclass format."""
        from repro.engine.messages import ProvenanceTag, TupleDelta, TupleDeltaBatch

        tag = ProvenanceTag("r1", "prog", "n0", "rid0")
        delta = TupleDelta(+1, Fact.make("link", ["a", "b", 1]), "d0", tag)
        assert repr(tag) == (
            "ProvenanceTag(rule_name='r1', program_name='prog', "
            "exec_node='n0', rid='rid0')"
        )
        assert repr(delta) == (
            "TupleDelta(sign=1, fact=Fact(relation='link', "
            "values=('a', 'b', 1)), derivation_id='d0', provenance="
            "ProvenanceTag(rule_name='r1', program_name='prog', "
            "exec_node='n0', rid='rid0'))"
        )
        assert repr(TupleDeltaBatch((delta,))) == f"TupleDeltaBatch(deltas=({delta!r},))"
