"""Tests for Fact and Schema."""

import pytest

from repro.errors import SchemaError
from repro.engine.tuples import Fact, Schema


class TestFact:
    def test_make_normalises_lists_to_tuples(self):
        fact = Fact.make("path", ["n0", "n1", [1, 2]])
        assert fact.values == ("n0", "n1", (1, 2))

    def test_facts_are_hashable_and_value_equal(self):
        a = Fact.make("link", ["n0", "n1", 1])
        b = Fact.make("link", ["n0", "n1", 1])
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_unsupported_value_type_rejected(self):
        with pytest.raises(SchemaError):
            Fact.make("bad", [object()])

    def test_unsupported_nested_type_rejected(self):
        with pytest.raises(SchemaError):
            Fact.make("bad", [({"a": 1},)])

    def test_rendering(self):
        fact = Fact.make("link", ["n0", "n1", 1.5])
        assert str(fact) == 'link("n0", "n1", 1.5)'

    def test_arity_and_value_access(self):
        fact = Fact.make("p", [1, 2, 3])
        assert fact.arity == 3
        assert fact.value(1) == 2


class TestSchema:
    def test_key_projection(self):
        schema = Schema(relation="link", arity=3, key_positions=(0, 1))
        fact = Fact.make("link", ["a", "b", 4])
        assert schema.key_of(fact) == ("a", "b")

    def test_location_projection(self):
        schema = Schema(relation="p", arity=2, location_index=1)
        assert schema.location_of(Fact.make("p", ["x", "home"])) == "home"

    def test_check_rejects_wrong_relation_and_arity(self):
        schema = Schema(relation="p", arity=2)
        with pytest.raises(SchemaError):
            schema.check(Fact.make("q", [1, 2]))
        with pytest.raises(SchemaError):
            schema.check(Fact.make("p", [1]))

    def test_invalid_key_position_rejected(self):
        with pytest.raises(SchemaError):
            Schema(relation="p", arity=2, key_positions=(5,))

    def test_invalid_attribute_name_count_rejected(self):
        with pytest.raises(SchemaError):
            Schema(relation="p", arity=2, attribute_names=("only_one",))
