"""Unit tests for the process backend's drain-trace wire layer.

The coordinator and each worker keep a :class:`~repro.engine.procpool.TraceCodec`
pair in lockstep over one pipe: the sender encodes with its codec, the
receiver decodes with its twin, and both append to their interning tables in
the same order because the protocol is strict request/reply alternation.
These tests drive an encoder/decoder pair directly — the same discipline,
without forking — and pin the envelope framing and the channel-level
transport accounting the E19 benchmark reads.
"""

from __future__ import annotations

import pytest

from repro.engine import topology
from repro.engine.backends import ProcessPoolBackend
from repro.engine.evaluator import DerivationEffect
from repro.engine.messages import ProvenanceTag
from repro.engine.node import _PendingUpdate
from repro.engine.procpool import TraceCodec, dump_envelope, load_envelope
from repro.engine.runtime import NetTrailsRuntime
from repro.engine.tuples import Fact
from repro.protocols import mincost


def fact(i=0):
    return Fact.make("link", (f"n{i}", f"n{i + 1}", 1.0))


def tag(i=0):
    return ProvenanceTag("r1", "mincost", f"n{i}", f"rid{i}")


def update(i=0, sign=+1):
    return _PendingUpdate(sign, fact(i), f"d{i}", tag(i))


def effect(i=0, sign=+1):
    return DerivationEffect(
        sign=sign,
        firing_id=f"n0#{i}",
        rule_name="r1",
        program_name="mincost",
        head_fact=fact(i),
        head_location=f"n{i}",
        body_facts=(fact(i), fact(i + 1)),
    )


def codec_pair():
    return TraceCodec(), TraceCodec()


class TestCodecRoundTrip:
    def test_updates_round_trip(self):
        encoder, decoder = codec_pair()
        updates = [update(0), update(1, sign=-1), _PendingUpdate(+1, fact(2), "d2", None)]
        decoded = decoder.decode_updates(encoder.encode_updates(updates))
        assert decoded == updates

    def test_trace_round_trips_every_entry_shape(self):
        encoder, decoder = codec_pair()
        trace = [
            ("batch", [update(0), update(1)]),
            ("single", update(2)),
            ("effects", [effect(0), effect(1, sign=-1)], [tag(0), None]),
        ]
        assert decoder.decode_trace(encoder.encode_trace(trace)) == trace

    def test_repeated_facts_shrink_to_int_references(self):
        """The second shipment of an equal fact is an intern id, not a
        (relation, values) payload — including across *separate* calls,
        which is what pickle's per-dump identity memo cannot do."""
        encoder, decoder = codec_pair()
        first = encoder.encode_updates([update(0)])
        again = encoder.encode_updates([update(0)])
        assert isinstance(again[0][1], int), "known fact must ship as an int id"
        assert first[0][1] != again[0][1] or not isinstance(first[0][1], int)
        # The decoder stays in lockstep as long as it sees the same order.
        assert decoder.decode_updates(first) == [update(0)]
        assert decoder.decode_updates(again) == [update(0)]

    def test_non_string_locations_survive(self):
        """Node ids are usually strings but the engine allows any hashable;
        the codec's raw-marker escape must keep ints and tuples intact."""
        encoder, decoder = codec_pair()
        for location in (7, ("as", 3), None):
            original = _PendingUpdate(
                +1, fact(0), "d0", ProvenanceTag("r", "p", location, "rid")
            )
            decoded = decoder.decode_updates(encoder.encode_updates([original]))[0]
            assert decoded.tag.exec_node == location

    def test_out_of_lockstep_decoder_fails_loudly(self):
        """A decoder that missed an earlier message cannot resolve the
        sender's intern ids — a protocol bug must crash, not corrupt."""
        encoder, decoder = codec_pair()
        encoder.encode_updates([update(0)])  # decoder never sees this one
        second = encoder.encode_updates([update(0)])  # ships fact as int id
        with pytest.raises((KeyError, IndexError)):
            decoder.decode_updates(second)


class TestEnvelopeFraming:
    def test_round_trip_and_shutdown_sentinel(self):
        envelope = ("drains", [("n0", [("u",)])])
        assert load_envelope(dump_envelope(envelope)) == envelope
        assert load_envelope(dump_envelope(None)) is None

    def test_delta_encoding_is_smaller_on_repeated_traffic(self):
        """Ten drains shipping the same facts: the codec pays the fact bytes
        once, raw pickling pays them every time."""
        encoder = TraceCodec()
        updates = [update(i % 3) for i in range(6)]
        delta_bytes = raw_bytes = 0
        for _ in range(10):
            delta_bytes += len(dump_envelope(encoder.encode_updates(updates)))
            raw_bytes += len(dump_envelope(updates))
        assert delta_bytes < raw_bytes * 0.6


class TestTransportStats:
    def run_churn(self, trace_delta):
        backend = ProcessPoolBackend(workers=2, trace_delta=trace_delta)
        with NetTrailsRuntime(
            mincost.program(), topology.isp_hierarchy(2, 2, 1, seed=5), backend=backend
        ) as runtime:
            runtime.seed_links(run=True)
            edges = sorted(runtime.topology.edges)
            for a, b in edges[:4]:
                cost = runtime.topology.cost(a, b)
                runtime.delete("link", [a, b, cost])
                runtime.run_to_quiescence()
                runtime.insert("link", [a, b, cost])
                runtime.run_to_quiescence()
            stats = backend.transport_stats()
            state = runtime.state("minCost")
        return stats, state

    def test_stats_shape_and_coalescing_bound(self):
        stats, state = self.run_churn(trace_delta=True)
        assert set(stats) == {"drains", "envelopes", "request_bytes", "reply_bytes"}
        assert state, "churn must leave a converged minCost table"
        assert stats["drains"] > 0
        # Coalescing can only merge requests: never more envelopes than
        # drains, and every envelope carries bytes in both directions.
        assert 0 < stats["envelopes"] <= stats["drains"]
        assert stats["request_bytes"] > 0 and stats["reply_bytes"] > 0

    def test_trace_delta_ablation_reduces_bytes_not_state(self):
        delta_stats, delta_state = self.run_churn(trace_delta=True)
        raw_stats, raw_state = self.run_churn(trace_delta=False)
        assert delta_state == raw_state
        assert delta_stats["drains"] == raw_stats["drains"]
        delta_total = delta_stats["request_bytes"] + delta_stats["reply_bytes"]
        raw_total = raw_stats["request_bytes"] + raw_stats["reply_bytes"]
        assert delta_total < raw_total
