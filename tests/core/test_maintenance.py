"""Tests for the ExSPAN provenance maintenance engine."""

import pytest

from repro.core.keys import BASE_RID, vid_for
from repro.core.maintenance import ProvenanceEngine
from repro.errors import ProvenanceError
from repro.engine import topology
from repro.engine.tuples import Fact
from repro.protocols import mincost, path_vector


@pytest.fixture
def ring_runtime(ring5):
    return mincost.setup(ring5)


class TestTableMaintenance:
    def test_prov_and_rule_exec_tables_populated(self, ring_runtime):
        sizes = ring_runtime.provenance.table_sizes()
        assert sizes["prov"] > 0
        assert sizes["ruleExec"] > 0

    def test_version_of_is_a_pure_read(self, ring_runtime):
        provenance = ring_runtime.provenance
        assert provenance.version_of("n0") > 0
        assert provenance.version_of("n0") == provenance.versions()["n0"]
        # Probing an unknown node must raise, not materialise a phantom
        # partition that would then show up in versions()/node_ids().
        before = provenance.node_ids()
        with pytest.raises(ProvenanceError):
            provenance.version_of("no-such-node")
        assert provenance.node_ids() == before
        assert "no-such-node" not in provenance.versions()

    def test_every_stored_fact_has_a_prov_entry(self, ring_runtime):
        provenance = ring_runtime.provenance
        for node_id, node in ring_runtime.nodes.items():
            store = provenance.store(node_id)
            for fact in node.store.all_facts():
                assert store.prov_entries(vid_for(fact)), f"missing prov for {fact}"

    def test_prov_entry_count_matches_derivation_count(self, ring_runtime):
        provenance = ring_runtime.provenance
        for node_id, node in ring_runtime.nodes.items():
            store = provenance.store(node_id)
            for fact in node.store.all_facts():
                assert len(store.prov_entries(vid_for(fact))) == node.store.derivation_count(fact)

    def test_base_tuples_marked_with_base_rid(self, ring_runtime):
        provenance = ring_runtime.provenance
        store = provenance.store("n0")
        link_vid = vid_for(Fact.make("link", ["n0", "n1", 1.0]))
        entries = store.prov_entries(link_vid)
        assert len(entries) == 1
        assert entries[0].rid == BASE_RID

    def test_rule_exec_children_are_local_tuples(self, ring_runtime):
        provenance = ring_runtime.provenance
        for node_id in ring_runtime.node_ids():
            store = provenance.store(node_id)
            for _loc, rid, _rule, _prog, child_vids in store.rule_exec_table():
                for child in child_vids:
                    assert store.knows_tuple(child)

    def test_prov_entries_point_to_existing_rule_execs(self, ring_runtime):
        provenance = ring_runtime.provenance
        for node_id in ring_runtime.node_ids():
            for _loc, _vid, rid, rloc in provenance.store(node_id).prov_table():
                if rid == BASE_RID:
                    continue
                assert provenance.store(rloc).has_rule_exec(rid)

    def test_tables_shrink_after_deletions(self, ring_runtime, ring5):
        before = ring_runtime.provenance.table_sizes()
        ring_runtime.remove_link("n0", "n1")
        ring_runtime.run_to_quiescence()
        after = ring_runtime.provenance.table_sizes()
        assert after["prov"] < before["prov"]
        assert after["ruleExec"] < before["ruleExec"]

    def test_tables_restored_after_reinsertion(self, ring_runtime):
        before = ring_runtime.provenance.table_sizes()
        ring_runtime.remove_link("n0", "n1")
        ring_runtime.run_to_quiescence()
        ring_runtime.add_link("n0", "n1", 1.0)
        ring_runtime.run_to_quiescence()
        assert ring_runtime.provenance.table_sizes() == before

    def test_per_node_sizes_sum_to_totals(self, ring_runtime):
        per_node = ring_runtime.provenance.per_node_sizes()
        totals = ring_runtime.provenance.table_sizes()
        assert sum(entry["prov"] for entry in per_node.values()) == totals["prov"]
        assert sum(entry["ruleExec"] for entry in per_node.values()) == totals["ruleExec"]


class TestGraphAssembly:
    def test_build_graph_covers_all_stored_tuples(self, ring_runtime):
        graph = ring_runtime.provenance.build_graph()
        assert graph.tuple_count >= ring_runtime.total_facts()
        assert graph.rule_exec_count == ring_runtime.provenance.table_sizes()["ruleExec"]

    def test_graph_lineage_matches_expectation(self, ring_runtime):
        graph = ring_runtime.provenance.build_graph()
        # minCost(n0 -> n2) = 2 goes through n1, so its lineage is exactly the
        # two links n0->n1 and n1->n2.
        target = graph.find_tuples("minCost", ("n0", "n2", 2.0))[0]
        lineage = {(v.relation,) + v.values for v in graph.base_tuples_of(target.vid)}
        assert lineage == {("link", "n0", "n1", 1.0), ("link", "n1", "n2", 1.0)}

    def test_resolve_tuple(self, ring_runtime):
        provenance = ring_runtime.provenance
        fact = Fact.make("link", ["n0", "n1", 1.0])
        relation, values, location = provenance.resolve_tuple(vid_for(fact))
        assert relation == "link"
        assert values == fact.values
        assert location == "n0"

    def test_resolve_unknown_tuple_raises(self, ring_runtime):
        from repro.errors import UnknownVertexError

        with pytest.raises(UnknownVertexError):
            ring_runtime.provenance.resolve_tuple("vid_nonexistent")


class TestDisabledProvenance:
    def test_runtime_without_provenance_still_converges(self, ring5):
        runtime = mincost.setup(ring5, provenance=False)
        assert mincost.check_against_reference(runtime, ring5)
        assert runtime.provenance is None

    def test_provenance_overhead_is_positive(self, ring5):
        with_provenance = mincost.setup(ring5, provenance=True)
        sizes = with_provenance.provenance.table_sizes()
        assert sizes["prov"] >= with_provenance.total_facts()


class TestPerVidVersions:
    """Per-VID reachability versions: bump exactly the changed subgraph's ancestors."""

    CHAIN_PROGRAM = """
    r1 hop(@D, S) :- edge(@S, D).
    r2 hop2(@D, S) :- hop(@M, S), edge(@M, D).
    """

    @pytest.fixture
    def chain(self):
        from repro.engine.runtime import NetTrailsRuntime

        runtime = NetTrailsRuntime(self.CHAIN_PROGRAM, topology.line(3))
        runtime.insert("edge", ["n0", "n1"])
        runtime.insert("edge", ["n1", "n2"])
        runtime.run_to_quiescence()
        vids = {
            "edge01": vid_for(Fact.make("edge", ["n0", "n1"])),
            "edge12": vid_for(Fact.make("edge", ["n1", "n2"])),
            "hop": vid_for(Fact.make("hop", ["n1", "n0"])),
            "hop2": vid_for(Fact.make("hop2", ["n2", "n0"])),
        }
        return runtime, vids

    def test_versions_assigned_on_initial_derivation(self, chain):
        runtime, vids = chain
        provenance = runtime.provenance
        for name, vid in vids.items():
            assert provenance.vid_version(vid) > 0, name

    def test_delete_bumps_ancestors_not_descendants(self, chain):
        runtime, vids = chain
        provenance = runtime.provenance
        before = {name: provenance.vid_version(vid) for name, vid in vids.items()}
        runtime.delete("edge", ["n1", "n2"])
        runtime.run_to_quiescence()
        after = {name: provenance.vid_version(vid) for name, vid in vids.items()}
        # The deleted base and the tuple derived through it change...
        assert after["edge12"] > before["edge12"]
        assert after["hop2"] > before["hop2"]
        # ...but the rest of the chain is downstream of neither.
        assert after["edge01"] == before["edge01"]
        assert after["hop"] == before["hop"]

    def test_delete_propagates_transitively_upward(self, chain):
        runtime, vids = chain
        provenance = runtime.provenance
        before = {name: provenance.vid_version(vid) for name, vid in vids.items()}
        runtime.delete("edge", ["n0", "n1"])
        runtime.run_to_quiescence()
        after = {name: provenance.vid_version(vid) for name, vid in vids.items()}
        # hop2 is two derivation steps above the deleted base (and lives two
        # nodes away); the upward walk must still reach it.
        assert after["edge01"] > before["edge01"]
        assert after["hop"] > before["hop"]
        assert after["hop2"] > before["hop2"]
        assert after["edge12"] == before["edge12"]

    def test_insert_propagates_like_delete(self, chain):
        runtime, vids = chain
        provenance = runtime.provenance
        runtime.delete("edge", ["n0", "n1"])
        runtime.run_to_quiescence()
        before = {name: provenance.vid_version(vid) for name, vid in vids.items()}
        runtime.insert("edge", ["n0", "n1"])
        runtime.run_to_quiescence()
        after = {name: provenance.vid_version(vid) for name, vid in vids.items()}
        assert after["edge01"] > before["edge01"]
        assert after["hop"] > before["hop"]
        assert after["hop2"] > before["hop2"]
        assert after["edge12"] == before["edge12"]

    def test_propagation_covers_graph_forward_closure(self, ring_runtime):
        """Oracle check: flapping a base link bumps (at least) every vertex
        whose forward closure in the assembled graph contains it, and leaves
        vertices outside every plausible blast radius untouched."""
        provenance = ring_runtime.provenance
        link = Fact.make("link", ["n0", "n1", 1.0])
        link_vid = vid_for(link)
        closure = provenance.build_graph().affected_vids(link_vid)
        assert closure  # the link derives paths, so the closure is non-empty
        before = {vid: provenance.vid_version(vid) for vid in closure | {link_vid}}
        ring_runtime.remove_link("n0", "n1")
        ring_runtime.run_to_quiescence()
        ring_runtime.add_link("n0", "n1", 1.0)
        ring_runtime.run_to_quiescence()
        for vid in closure | {link_vid}:
            assert provenance.vid_version(vid) > before[vid], vid

    def test_aggregate_head_isolated_from_losing_alternatives(self):
        """Adding a worse alternative to a min-group must not bump the head:
        the winning derivation — what a traversal visits — is unchanged."""
        star = topology.star(5)
        runtime = mincost.setup(star)
        provenance = runtime.provenance
        hub = "n0"
        # minCost(n1 -> hub) is the direct link; churn a *different* leaf's
        # link, which rewrites many path groups but not this winner's subtree.
        target_vid = provenance.vid_of("minCost", ["n1", hub, 1.0])
        before = provenance.vid_version(target_vid)
        runtime.remove_link("n2", hub)
        runtime.run_to_quiescence()
        runtime.add_link("n2", hub, 1.0)
        runtime.run_to_quiescence()
        assert provenance.vid_version(target_vid) == before


class TestGlobalVersionMemo:
    def test_global_version_equals_partition_sum(self, ring_runtime):
        provenance = ring_runtime.provenance
        assert provenance.global_version() == sum(provenance.versions().values())
        ring_runtime.remove_link("n0", "n1")
        ring_runtime.run_to_quiescence()
        assert provenance.global_version() == sum(provenance.versions().values())

    def test_fresh_engine_starts_at_zero(self):
        engine = ProvenanceEngine()
        assert engine.global_version() == 0
        assert engine.vid_version("anything") == 0
