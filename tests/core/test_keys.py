"""Tests for content-addressed provenance identifiers."""

from repro.core.keys import BASE_RID, rid_for, vid_for, vid_for_values
from repro.engine.tuples import Fact


class TestVids:
    def test_vid_is_deterministic(self):
        fact = Fact.make("link", ["n0", "n1", 1])
        assert vid_for(fact) == vid_for(Fact.make("link", ["n0", "n1", 1]))

    def test_vid_distinguishes_values_and_relations(self):
        assert vid_for(Fact.make("link", ["n0", "n1", 1])) != vid_for(Fact.make("link", ["n0", "n1", 2]))
        assert vid_for(Fact.make("link", ["n0", "n1", 1])) != vid_for(Fact.make("edge", ["n0", "n1", 1]))

    def test_vid_for_values_matches_vid_for(self):
        fact = Fact.make("path", ["n0", "n2", (1, 2)])
        assert vid_for_values("path", ["n0", "n2", (1, 2)]) == vid_for(fact)

    def test_vid_prefix(self):
        assert vid_for(Fact.make("x", [1])).startswith("vid_")


class TestRids:
    def test_rid_is_deterministic(self):
        assert rid_for("r1", "n0", ["vid_a", "vid_b"]) == rid_for("r1", "n0", ["vid_a", "vid_b"])

    def test_rid_depends_on_rule_node_and_children(self):
        base = rid_for("r1", "n0", ["vid_a"])
        assert base != rid_for("r2", "n0", ["vid_a"])
        assert base != rid_for("r1", "n1", ["vid_a"])
        assert base != rid_for("r1", "n0", ["vid_b"])

    def test_rid_depends_on_child_order(self):
        assert rid_for("r1", "n0", ["a", "b"]) != rid_for("r1", "n0", ["b", "a"])

    def test_base_marker_is_not_a_hash(self):
        assert BASE_RID == "BASE"
