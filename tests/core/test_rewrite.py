"""Tests for the automatic provenance rule rewriting (ExSPAN rewrite)."""

import pytest

from repro.core.keys import BASE_RID
from repro.core.rewrite import (
    PROV_RELATION,
    RULE_EXEC_RELATION,
    base_provenance_rule,
    provenance_registry,
    rewrite_program,
    rewrite_rule,
)
from repro.engine import topology
from repro.engine.runtime import NetTrailsRuntime
from repro.ndlog.localization import localize_program
from repro.ndlog.parser import parse_program, parse_rule
from repro.ndlog.validation import validate_program
from repro.protocols import mincost

SIMPLE_PROGRAM = """
materialize(link, infinity, infinity, keys(1, 2)).
t1 reach(@S, D) :- link(@S, D, C).
t2 reach(@S, D) :- link(@S, Z, C), reach(@Z, D), S != D.
"""


class TestRewriteShape:
    def test_rewritten_program_contains_original_and_view_rules(self):
        program = parse_program(SIMPLE_PROGRAM, name="simple")
        rewritten = rewrite_program(program)
        heads = {rule.head.relation for rule in rewritten.rules}
        assert {PROV_RELATION, RULE_EXEC_RELATION, "reach", "link"} - heads == {"link"}
        names = [rule.name for rule in rewritten.rules]
        assert any(name.endswith("_prov") for name in names)
        assert any(name.endswith("_ruleExec") for name in names)
        assert any(name.endswith("_base_prov") for name in names)

    def test_rewritten_program_is_valid_ndlog(self):
        program = parse_program(SIMPLE_PROGRAM, name="simple")
        rewritten = rewrite_program(program)
        validate_program(rewritten, provenance_registry())

    def test_rewritten_program_renders_and_reparses(self):
        rewritten = rewrite_program(parse_program(SIMPLE_PROGRAM, name="simple"))
        reparsed = parse_program(str(rewritten), name="roundtrip")
        assert len(reparsed.rules) == len(rewritten.rules)

    def test_aggregate_and_maybe_rules_passed_through(self):
        rewritten = rewrite_program(mincost.program())
        # mc3 (the aggregate rule) gets no _prov/_ruleExec companions.
        names = {rule.name for rule in rewritten.rules}
        assert "mc3" in names
        assert "mc3_prov" not in names

    def test_rewrite_rule_skips_maybe_rules(self):
        rule = parse_rule("m out(@A, X) ?- incoming(@A, X).")
        assert rewrite_rule(rule, "p") == []

    def test_base_provenance_rule_shape(self):
        rule = base_provenance_rule("link", 3)
        assert rule.head.relation == PROV_RELATION
        assert str(rule.head.terms[2]) == f'"{BASE_RID}"'


class TestRewriteExecutionEquivalence:
    """Executing the rewritten program computes the same tables as the engine hooks."""

    @pytest.fixture
    def reference_tables(self):
        net = topology.line(3)
        runtime = NetTrailsRuntime(SIMPLE_PROGRAM, net, provenance=True, program_name="simple")
        runtime.seed_links(run=True)
        provenance = runtime.provenance
        prov_rows = set()
        exec_rows = set()
        for node_id in runtime.node_ids():
            store = provenance.store(node_id)
            for loc, vid, rid, rloc in store.prov_table():
                prov_rows.add((loc, vid, rid, rloc))
            for loc, rid, rule, _program, children in store.rule_exec_table():
                exec_rows.add((loc, rid, rule, tuple(children)))
        return prov_rows, exec_rows

    @pytest.fixture
    def rewritten_tables(self):
        net = topology.line(3)
        program = rewrite_program(parse_program(SIMPLE_PROGRAM, name="simple"))
        runtime = NetTrailsRuntime(
            program, net, provenance=False, registry=provenance_registry()
        )
        runtime.seed_links(run=True)
        prov_rows = set()
        for node_id in runtime.node_ids():
            for loc, vid, rid, rloc in runtime.node_state(node_id, PROV_RELATION):
                prov_rows.add((loc, vid, rid, rloc))
        exec_rows = set()
        for node_id in runtime.node_ids():
            for loc, rid, rule, _program, children in runtime.node_state(
                node_id, RULE_EXEC_RELATION
            ):
                exec_rows.add((loc, rid, rule, tuple(children)))
        return prov_rows, exec_rows

    def test_prov_tables_identical(self, reference_tables, rewritten_tables):
        assert rewritten_tables[0] == reference_tables[0]

    def test_rule_exec_tables_identical(self, reference_tables, rewritten_tables):
        assert rewritten_tables[1] == reference_tables[1]

    def test_rewritten_views_track_deletions(self):
        net = topology.line(3)
        program = rewrite_program(parse_program(SIMPLE_PROGRAM, name="simple"))
        runtime = NetTrailsRuntime(
            program, net, provenance=False, registry=provenance_registry()
        )
        runtime.seed_links(run=True)
        before = len(runtime.state(PROV_RELATION))
        runtime.remove_link("n1", "n2")
        runtime.run_to_quiescence()
        after = len(runtime.state(PROV_RELATION))
        assert after < before
        # n2 can no longer reach anyone, and the corresponding prov view rows
        # disappeared together with the reach tuples.
        reach = runtime.state("reach")
        assert ("n2", "n0") not in reach and ("n2", "n1") not in reach
        assert ("n0", "n1") in reach
