"""Unit tests for the per-partition interval index.

These tests drive a standalone :class:`NodeProvenanceStore` (no engine, no
runtime) so every structural case of the index is exercised in isolation:
cold builds, incremental tree-edge inserts and deletes, non-tree edges on
exception lists, the gap-exhaustion escalation ladder (gap fit → ancestor
relabel → fresh top interval → rebuild), pending-backlog overflow, winner
isolation under aggregate-loser churn, and label determinism.  The offline
oracle for every closure assertion is :func:`repro.core.graph.reachable_closure`
over the successor map the store's rows induce.
"""

from __future__ import annotations

import pytest

from repro.core import (
    BASE_RID,
    NodeProvenanceStore,
    PartitionIntervalIndex,
    reachable_closure,
)
from repro.core.maintenance import ProvEntry, RuleExecEntry

NODE = "n1"


def make_store():
    return NodeProvenanceStore(NODE)


def attach_index(store, **kwargs):
    """A custom-parameter index wired into the store's mutation hooks."""
    index = PartitionIntervalIndex(store, **kwargs)
    store._interval_index = index
    return index


def add_base(store, vid):
    store.add_prov(vid, BASE_RID, store.node_id)


def derive(store, head, rid, children, rloc=None):
    """One local derivation: register the firing, then the prov row."""
    store.add_rule_exec(
        RuleExecEntry(
            rid=rid,
            rule_name="r",
            program_name="p",
            child_vids=tuple(children),
            head_vid=head,
            head_location=store.node_id,
        )
    )
    store.add_prov(head, rid, rloc if rloc is not None else store.node_id)


def retract(store, head, rid, children, rloc=None):
    store.remove_prov(
        ProvEntry(vid=head, rid=rid, rloc=rloc if rloc is not None else store.node_id)
    )
    store.remove_rule_exec(rid)


def store_successors(store):
    """The successor map the store's rows induce (the index's edge contract)."""
    successors = {}
    for vid in store._prov:
        key = ("t", vid)
        successors.setdefault(key, set())
        for entry in store.prov_entries(vid):
            if entry.rid != BASE_RID and entry.rloc == store.node_id:
                successors[key].add(("x", entry.rid))
    for rid, entry in store._rule_execs.items():
        key = ("x", rid)
        successors.setdefault(key, set())
        for child in entry.child_vids:
            successors[key].add(("t", child))
    return successors


def assert_closure_matches_oracle(index, store, targets):
    reached, missing = index.closure(list(targets))
    assert not missing, missing
    assert reached == reachable_closure(store_successors(store), targets)


def build_diamond(store):
    """h is derived two ways that share base b: x1(a, b) and x2(b, c)."""
    for vid in ("a", "b", "c"):
        add_base(store, vid)
    derive(store, "h", "x1", ["a", "b"])
    derive(store, "h", "x2", ["b", "c"])


class TestBuildAndClosure:
    def test_cold_build_closure_matches_oracle(self):
        store = make_store()
        build_diamond(store)
        index = store.interval_index()
        assert not index.active
        index.ensure_ready()
        assert index.active
        assert index.counters()["builds"] == 1
        for targets in ([("t", "h")], [("t", "a")], [("x", "x2")], [("t", "h"), ("t", "c")]):
            assert_closure_matches_oracle(index, store, targets)

    def test_shared_child_lands_on_an_exception_list(self):
        store = make_store()
        build_diamond(store)
        index = store.interval_index()
        index.ensure_ready()
        # b has two predecessors; the spanning forest keeps one tree edge and
        # the other must survive as an exception edge — and the closure must
        # still reach b through it.
        exception_targets = {
            target for targets in index._exceptions.values() for target in targets
        }
        assert ("t", "b") in exception_targets
        reached, _ = index.closure([("x", "x2")])
        assert ("t", "b") in reached

    def test_unlabeled_targets_come_back_as_missing(self):
        store = make_store()
        add_base(store, "a")
        index = store.interval_index()
        index.ensure_ready()
        reached, missing = index.closure([("t", "a"), ("t", "ghost")])
        assert ("t", "a") in reached
        assert missing == [("t", "ghost")]

    def test_remote_prov_entries_are_not_edges(self):
        store = make_store()
        add_base(store, "a")
        derive(store, "h", "x1", ["a"])
        store.add_prov("h", "xr", "other-node")  # remote derivation: frontier
        index = store.interval_index()
        index.ensure_ready()
        reached, _ = index.closure([("t", "h")])
        assert ("x", "xr") not in reached
        assert_closure_matches_oracle(index, store, [("t", "h")])


class TestIncrementalMaintenance:
    def test_tree_edge_insert_and_delete(self):
        store = make_store()
        add_base(store, "a")
        index = store.interval_index()
        index.ensure_ready()

        derive(store, "h", "x1", ["a"])
        index.ensure_ready()
        assert index.counters()["pending_applied"] > 0
        assert_closure_matches_oracle(index, store, [("t", "h")])
        reached, _ = index.closure([("t", "h")])
        assert {("t", "h"), ("x", "x1"), ("t", "a")} <= reached

        retract(store, "h", "x1", ["a"])
        index.ensure_ready()
        reached, _ = index.closure([("t", "h")])
        assert ("x", "x1") not in reached
        assert ("t", "a") not in reached
        assert_closure_matches_oracle(index, store, [("t", "h")])

    def test_exception_edge_insert_and_delete(self):
        store = make_store()
        for vid in ("a", "b"):
            add_base(store, vid)
        derive(store, "h1", "x1", ["a", "b"])
        index = store.interval_index()
        index.ensure_ready()

        # x2 consumes b too: the second predecessor of b becomes an exception
        # edge, and removing it must not disturb the surviving tree edge.
        derive(store, "h2", "x2", ["b"])
        index.ensure_ready()
        assert_closure_matches_oracle(index, store, [("t", "h1")])
        assert_closure_matches_oracle(index, store, [("t", "h2")])

        retract(store, "h2", "x2", ["b"])
        index.ensure_ready()
        reached, _ = index.closure([("t", "h1")])
        assert ("t", "b") in reached
        assert_closure_matches_oracle(index, store, [("t", "h1")])

    def test_deleting_a_tree_edge_promotes_the_exception_predecessor(self):
        store = make_store()
        build_diamond(store)
        index = store.interval_index()
        index.ensure_ready()
        # Retract the winner derivation x1; b must remain reachable from x2
        # whichever of its two predecessors held the tree edge.
        retract(store, "h", "x1", ["a", "b"])
        index.ensure_ready()
        reached, _ = index.closure([("t", "h")])
        assert ("t", "b") in reached
        assert ("t", "c") in reached
        assert ("x", "x1") not in reached
        assert_closure_matches_oracle(index, store, [("t", "h")])

    def test_pending_overflow_deactivates_then_rebuilds(self):
        store = make_store()
        add_base(store, "a")
        index = attach_index(store, pending_limit=3)
        index.ensure_ready()
        assert index.counters()["builds"] == 1

        for step in range(4):
            derive(store, f"h{step}", f"x{step}", ["a"])
        assert not index.active, "backlog beyond pending_limit must go cold"
        assert index.counters()["overflows"] == 1

        index.ensure_ready()
        assert index.active
        assert index.counters()["builds"] == 2
        for step in range(4):
            assert_closure_matches_oracle(index, store, [("t", f"h{step}")])


class TestGapExhaustion:
    def test_slack_one_forces_ancestor_relabels(self):
        store = make_store()
        add_base(store, "a")
        derive(store, "h", "x0", ["a"])
        index = attach_index(store, slack=1)
        index.ensure_ready()
        # With slack=1 every interval is exactly its subtree size: any insert
        # under an existing parent must escalate past the (empty) gap search.
        for step in range(4):
            derive(store, "h", f"y{step}", ["a"])
            index.ensure_ready()
            assert_closure_matches_oracle(index, store, [("t", "h")])
        assert index.counters()["subtree_relabels"] > 0

    def test_capacity_exhaustion_triggers_partition_rebuild(self):
        store = make_store()
        add_base(store, "a")
        index = attach_index(store, slack=1, capacity=16)
        index.ensure_ready()
        for step in range(24):
            derive(store, f"h{step}", f"x{step}", ["a"])
        index.ensure_ready()
        assert index.counters()["rebuilds"] > 0
        for step in range(24):
            assert_closure_matches_oracle(index, store, [("t", f"h{step}")])

    def test_rejects_nonpositive_slack(self):
        store = make_store()
        with pytest.raises(ValueError):
            PartitionIntervalIndex(store, slack=0)


class TestAggregateLoserIsolation:
    def test_loser_churn_never_perturbs_winner_subtree_labels(self):
        store = make_store()
        for vid in ("a", "b"):
            add_base(store, vid)
        derive(store, "h", "x1", ["a", "b"])  # the aggregate winner
        index = store.interval_index()
        index.ensure_ready()
        winner_keys = {("x", "x1"), ("t", "a"), ("t", "b")}
        snapshot = {key: value for key, value in index.labels().items() if key in winner_keys}
        assert set(snapshot) == winner_keys

        # A losing alternative arrives and is retracted again (the transient
        # aggregate-loser pattern): the winner's labels must never move, so
        # cached interval ranges over the winner subtree stay valid.
        add_base(store, "c")
        derive(store, "h", "x2", ["c"])
        index.ensure_ready()
        assert_closure_matches_oracle(index, store, [("t", "h")])
        after_add = {key: value for key, value in index.labels().items() if key in winner_keys}
        assert after_add == snapshot

        retract(store, "h", "x2", ["c"])
        index.ensure_ready()
        assert_closure_matches_oracle(index, store, [("t", "h")])
        after_remove = {key: value for key, value in index.labels().items() if key in winner_keys}
        assert after_remove == snapshot


class TestLabelDeterminism:
    SCRIPT = (
        ("base", "a"),
        ("base", "b"),
        ("derive", "h", "x1", ("a", "b")),
        ("derive", "h", "x2", ("b",)),
        ("base", "c"),
        ("derive", "g", "x3", ("c", "h")),
        ("retract", "h", "x2", ("b",)),
        ("derive", "h", "x4", ("c",)),
    )

    def replay(self, store, index=None, checkpoints=False):
        for op in self.SCRIPT:
            if op[0] == "base":
                add_base(store, op[1])
            elif op[0] == "derive":
                derive(store, op[1], op[2], list(op[3]))
            else:
                retract(store, op[1], op[2], list(op[3]))
            if checkpoints and index is not None:
                index.ensure_ready()

    def test_cold_builds_are_deterministic(self):
        first, second = make_store(), make_store()
        self.replay(first)
        self.replay(second)
        one, two = first.interval_index(), second.interval_index()
        one.ensure_ready()
        two.ensure_ready()
        assert one.labels() == two.labels()

    def test_incremental_histories_are_deterministic(self):
        first, second = make_store(), make_store()
        indexes = [first.interval_index(), second.interval_index()]
        for index in indexes:
            index.ensure_ready()
        self.replay(first, indexes[0], checkpoints=True)
        self.replay(second, indexes[1], checkpoints=True)
        assert indexes[0].labels() == indexes[1].labels()
        assert indexes[0].counters() == indexes[1].counters()
        assert_closure_matches_oracle(indexes[0], first, [("t", "g")])
