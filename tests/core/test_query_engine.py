"""Tests for the distributed provenance query engine."""

import pytest

from repro.errors import QueryError
from repro.core.optimizations import QueryOptions
from repro.core.queries import CustomQuery, QUERY_COUNT, QUERY_LINEAGE
from repro.core.query import DistributedQueryEngine
from repro.core.results import TupleRef
from repro.engine import topology
from repro.engine.runtime import NetTrailsRuntime
from repro.protocols import dsr, mincost, path_vector


@pytest.fixture
def mincost_engine(mincost_ring):
    return mincost_ring, DistributedQueryEngine(mincost_ring)


class TestLineageQueries:
    def test_lineage_of_two_hop_mincost(self, mincost_engine):
        runtime, queries = mincost_engine
        result = queries.lineage("minCost", ["n0", "n2", 2.0])
        expected = {
            TupleRef("link", ("n0", "n1", 1.0), "n0"),
            TupleRef("link", ("n1", "n2", 1.0), "n1"),
        }
        assert result.value == frozenset(expected)
        assert not result.truncated

    def test_lineage_of_direct_link_is_single_base(self, mincost_engine):
        _, queries = mincost_engine
        result = queries.lineage("minCost", ["n0", "n1", 1.0])
        assert result.value == frozenset({TupleRef("link", ("n0", "n1", 1.0), "n0")})

    def test_lineage_matches_centralized_graph(self, mincost_engine):
        runtime, queries = mincost_engine
        graph = runtime.provenance.build_graph()
        for source, destination, cost in runtime.state("minCost"):
            distributed = queries.lineage("minCost", [source, destination, cost]).value
            vertex = graph.find_tuples("minCost", (source, destination, cost))[0]
            centralized = {
                (v.relation,) + v.values for v in graph.base_tuples_of(vertex.vid)
            }
            assert {(r.relation,) + r.values for r in distributed} == centralized

    def test_query_for_absent_tuple_rejected(self, mincost_engine):
        _, queries = mincost_engine
        with pytest.raises(QueryError):
            queries.lineage("minCost", ["n0", "n2", 99.0])

    def test_unknown_mode_rejected(self, mincost_engine):
        _, queries = mincost_engine
        with pytest.raises(QueryError):
            queries.query("minCost", ["n0", "n1", 1.0], mode="nonsense")

    def test_engine_requires_provenance(self, ring5):
        runtime = mincost.setup(ring5, provenance=False)
        with pytest.raises(QueryError):
            DistributedQueryEngine(runtime)


class TestOtherModes:
    def test_participants_of_multi_hop_tuple(self, mincost_engine):
        _, queries = mincost_engine
        result = queries.participants("minCost", ["n0", "n2", 2.0])
        assert result.value == frozenset({"n0", "n1"})

    def test_derivation_count_on_ring(self, mincost_engine):
        runtime, queries = mincost_engine
        graph = runtime.provenance.build_graph()
        for source, destination, cost in runtime.state("minCost"):
            distributed = queries.derivation_count("minCost", [source, destination, cost]).value
            vertex = graph.find_tuples("minCost", (source, destination, cost))[0]
            assert distributed == graph.derivation_count(vertex.vid)

    def test_dsr_alternative_routes_counted(self):
        net = topology.ring(5)
        runtime = dsr.setup(net)
        dsr.request_route(runtime, "n0", "n2")
        queries = DistributedQueryEngine(runtime)
        count = queries.derivation_count("routeCount", ["n0", "n2", 2]).value
        assert count >= 1

    def test_subgraph_query_returns_renderable_graph(self, mincost_engine):
        _, queries = mincost_engine
        result = queries.subgraph("minCost", ["n0", "n2", 2.0])
        graph = result.value
        assert graph.tuple_count >= 3
        assert graph.find_tuples("minCost", ("n0", "n2", 2.0))

    def test_custom_query_depth(self, mincost_engine):
        _, queries = mincost_engine
        queries.register_query(
            CustomQuery(
                name="depth",
                on_base=lambda ref: 0,
                on_exec=lambda ref, children: 1 + max(children, default=0),
                on_tuple=lambda ref, derivations: max(derivations, default=0),
            )
        )
        shallow = queries.query("minCost", ["n0", "n1", 1.0], mode="depth").value
        deep = queries.query("minCost", ["n0", "n2", 2.0], mode="depth").value
        assert deep > shallow >= 1


class TestStatsAndIssuingNode:
    def test_remote_tuple_query_costs_messages(self, mincost_engine):
        _, queries = mincost_engine
        result = queries.lineage("minCost", ["n0", "n2", 2.0])
        assert result.stats.messages > 0
        assert result.stats.nodes_visited == 2
        assert result.stats.latency > 0

    def test_purely_local_query_costs_no_messages(self, mincost_engine):
        _, queries = mincost_engine
        result = queries.lineage("minCost", ["n0", "n1", 1.0])
        assert result.stats.messages == 0

    def test_query_issued_from_other_node(self, mincost_engine):
        _, queries = mincost_engine
        local = queries.lineage("minCost", ["n0", "n2", 2.0])
        remote = queries.lineage("minCost", ["n0", "n2", 2.0], at="n3")
        assert remote.value == local.value
        # issuing remotely costs at least the extra request/reply round trip
        assert remote.stats.messages >= local.stats.messages + 2

    def test_query_issued_at_unknown_node_rejected(self, mincost_engine):
        _, queries = mincost_engine
        with pytest.raises(QueryError):
            queries.lineage("minCost", ["n0", "n2", 2.0], at="ghost")


class TestOptimizations:
    def test_cache_eliminates_messages_on_repeat(self, pathvector_line):
        queries = DistributedQueryEngine(pathvector_line)
        options = QueryOptions(use_cache=True)
        first = queries.lineage("bestPathCost", ["n0", "n3", 3.0], options=options)
        second = queries.lineage("bestPathCost", ["n0", "n3", 3.0], options=options)
        assert second.value == first.value
        assert first.stats.messages > 0
        assert second.stats.messages == 0
        assert second.stats.cache_hits >= 1

    def test_cache_invalidated_by_subtree_change(self, pathvector_line):
        """Churn that touches the queried subtree must invalidate the entry."""
        runtime = pathvector_line
        queries = DistributedQueryEngine(runtime)
        options = QueryOptions(use_cache=True)
        first = queries.lineage("bestPathCost", ["n0", "n3", 3.0], options=options)
        # Flap a link on the queried path: the tuple is retracted and
        # re-derived, so its reachability version moves past the entry's.
        runtime.remove_link("n2", "n3")
        runtime.run_to_quiescence()
        runtime.add_link("n2", "n3", 1.0)
        runtime.run_to_quiescence()
        second = queries.lineage("bestPathCost", ["n0", "n3", 3.0], options=options)
        assert second.value == first.value
        assert second.stats.messages > 0  # cache entry was stale, traversal re-ran

    def test_unrelated_churn_keeps_cache_entries(self, pathvector_line):
        """Per-VID validation: a delta outside the queried subtree is invisible."""
        runtime = pathvector_line
        queries = DistributedQueryEngine(runtime)
        options = QueryOptions(use_cache=True)
        first = queries.lineage("bestPathCost", ["n0", "n1", 1.0], options=options)
        # Churn at the far end of the chain: provenance changes everywhere
        # around, but not in bestPathCost(n0, n1)'s derivation subtree.
        runtime.remove_link("n2", "n3")
        runtime.run_to_quiescence()
        runtime.add_link("n2", "n3", 1.0)
        runtime.run_to_quiescence()
        second = queries.lineage("bestPathCost", ["n0", "n1", 1.0], options=options)
        assert second.value == first.value
        assert second.stats.cache_hits >= 1
        assert second.stats.messages == 0

    def test_global_validation_mode_flushes_on_any_delta(self, pathvector_line):
        """The ablation knob re-creates the coarse flush-on-any-delta scheme."""
        runtime = pathvector_line
        queries = DistributedQueryEngine(runtime, cache_validation="global")
        options = QueryOptions(use_cache=True)
        first = queries.lineage("bestPathCost", ["n0", "n3", 3.0], options=options)
        # An unrelated (losing) link still bumps the global version.
        runtime.insert("link", ["n3", "n0", 10.0])
        runtime.insert("link", ["n0", "n3", 10.0])
        runtime.run_to_quiescence()
        second = queries.lineage("bestPathCost", ["n0", "n3", 3.0], options=options)
        assert second.value == first.value
        assert second.stats.messages > 0
        with pytest.raises(QueryError):
            DistributedQueryEngine(runtime, cache_validation="psychic")

    def test_remote_issuer_caches_reply_version(self, mincost_engine):
        """Reply bundles carry their computed-at version; the issuing node's
        cache answers the repeat query without any network hop."""
        _, queries = mincost_engine
        options = QueryOptions(use_cache=True)
        first = queries.lineage("minCost", ["n0", "n2", 2.0], at="n3", options=options)
        second = queries.lineage("minCost", ["n0", "n2", 2.0], at="n3", options=options)
        assert second.value == first.value
        assert first.stats.messages > 0
        assert second.stats.messages == 0
        assert second.stats.cache_hits == 1

    def test_parallel_fanout_batches_messages_and_rounds(self):
        """Two derivations at one peer: parallel = 1 request + 1 reply batch.

        ``flag(@D, S)`` has one derivation per matching ``src`` fact, and both
        rule executions happen at the source node — the canonical fan-out.
        Sequential traversal pays a request/reply pair per derivation (more
        messages, more rounds); parallel traversal ships both requests in one
        :class:`QueryRequestBatch` and both replies in one batch.
        """
        runtime = NetTrailsRuntime("r1 flag(@D, S) :- src(@S, D, X).", topology.line(2))
        runtime.insert("src", ["n1", "n0", 1])
        runtime.insert("src", ["n1", "n0", 2])
        runtime.run_to_quiescence()
        queries = DistributedQueryEngine(runtime)

        parallel = queries.lineage("flag", ["n0", "n1"], options=QueryOptions(traversal="parallel"))
        sequential = queries.lineage("flag", ["n0", "n1"], options=QueryOptions(traversal="sequential"))
        assert parallel.value == sequential.value
        assert parallel.value == frozenset(
            {TupleRef("src", ("n1", "n0", 1), "n1"), TupleRef("src", ("n1", "n0", 2), "n1")}
        )
        # one batched request + one batched reply...
        assert parallel.stats.messages == 2
        assert parallel.stats.rounds == 2
        # ...versus a request/reply pair per alternative derivation.
        assert sequential.stats.messages == 4
        assert sequential.stats.rounds == 4

    def test_parallel_traversal_fewer_rounds_same_answer(self):
        """On a branching workload parallel strictly wins on rounds."""
        net = topology.random_connected(10, edge_probability=0.5, seed=17)
        runtime = path_vector.setup(net)
        queries = DistributedQueryEngine(runtime)
        rows = sorted(runtime.state("bestPathCost"), key=lambda row: -row[2])
        strict_win = False
        for row in rows[:5]:
            parallel = queries.lineage(
                "bestPathCost", list(row), options=QueryOptions(traversal="parallel")
            )
            sequential = queries.lineage(
                "bestPathCost", list(row), options=QueryOptions(traversal="sequential")
            )
            assert parallel.value == sequential.value
            assert parallel.stats.rounds <= sequential.stats.rounds
            strict_win = strict_win or parallel.stats.rounds < sequential.stats.rounds
        assert strict_win

    def test_sequential_threshold_prunes_messages(self):
        # A richer topology gives minCost tuples several alternative
        # derivations, so pruning after the first one saves messages.
        net = topology.random_connected(8, edge_probability=0.5, seed=5)
        runtime = mincost.setup(net)
        queries = DistributedQueryEngine(runtime)
        rows = runtime.state("minCost")
        source, destination, cost = max(rows, key=lambda row: row[2])
        baseline = queries.lineage("minCost", [source, destination, cost])
        pruned = queries.lineage(
            "minCost",
            [source, destination, cost],
            options=QueryOptions(traversal="sequential", threshold=1),
        )
        assert pruned.stats.messages <= baseline.stats.messages
        assert pruned.truncated or pruned.value == baseline.value
        # the pruned result is a subset of the full lineage
        assert set(pruned.value) <= set(baseline.value)

    def test_max_depth_truncates(self, mincost_engine):
        _, queries = mincost_engine
        result = queries.lineage(
            "minCost", ["n0", "n2", 2.0], options=QueryOptions(max_depth=1)
        )
        assert result.truncated

    def test_truncated_results_not_cached(self, mincost_engine):
        _, queries = mincost_engine
        options = QueryOptions(use_cache=True, max_depth=1)
        queries.lineage("minCost", ["n0", "n2", 2.0], options=options)
        stats = queries.cache_stats()
        assert all(entry["entries"] == 0 for entry in stats.values())

    def test_cache_stats_structure(self, mincost_engine):
        _, queries = mincost_engine
        queries.lineage("minCost", ["n0", "n1", 1.0], options=QueryOptions(use_cache=True))
        stats = queries.cache_stats()
        assert "n0" in stats
        assert set(stats["n0"]) == {
            "hits",
            "misses",
            "stores",
            "entries",
            "evictions",
            "stale_dropped",
        }
        totals = queries.cache_totals()
        assert totals["stores"] == sum(entry["stores"] for entry in stats.values())

    def test_differing_options_never_share_an_entry(self, mincost_engine):
        """Regression: (threshold, max_depth) are part of the cache key, so
        queries with different pruning settings must not serve each other."""
        _, queries = mincost_engine
        target = ["n0", "n2", 2.0]
        # Neither run truncates (threshold/max_depth are generous), so both
        # complete, both are cached — under *separate* keys.
        loose = queries.lineage("minCost", target, options=QueryOptions(use_cache=True))
        bounded = queries.lineage(
            "minCost", target, options=QueryOptions(use_cache=True, threshold=50, max_depth=50)
        )
        assert bounded.value == loose.value
        assert bounded.stats.cache_hits == 0  # second query could not reuse the first
        repeat = queries.lineage(
            "minCost", target, options=QueryOptions(use_cache=True, threshold=50, max_depth=50)
        )
        assert repeat.stats.cache_hits >= 1  # but an exact-options repeat can
