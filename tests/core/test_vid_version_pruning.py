"""Regression tests for the epoch-stamped pruning of the per-VID version map.

Before the sweep existed, ``ProvenanceEngine._vid_versions`` grew without
bound: every vid that ever had a reachability bump kept its counter forever,
including vids of long-retracted tuples.  The sweep drops counters for dead
vids (no live uses, no live rule execution deriving them) once the map
outgrows a threshold, folding the dropped values into ``_rebirth_epoch`` so
a later *rebirth* of the same vid restarts above every version ever handed
out — a pruned-then-reborn vid can never revalidate a stale cache entry.

These tests force a tiny threshold so the sweep runs constantly under link
flaps, and assert both the bookkeeping (entries bounded, sweeps counted,
epoch advanced) and the soundness contract (cached answers stay bit-identical
to uncached traversals through prune/rebirth cycles).
"""

from __future__ import annotations

import copy
import random

from repro.core.optimizations import QueryOptions
from repro.core.query import DistributedQueryEngine
from repro.engine import topology
from repro.engine.runtime import NetTrailsRuntime
from repro.protocols import mincost

CACHED = QueryOptions(use_cache=True)
UNCACHED = QueryOptions(use_cache=False)


def build_runtime(net, threshold=8):
    runtime = NetTrailsRuntime(mincost.program(), copy.deepcopy(net))
    runtime.provenance._vid_version_sweep_threshold = threshold
    runtime.seed_links(run=True)
    return runtime


def flap(runtime, source, target, cost=1.0):
    runtime.remove_link(source, target)
    runtime.run_to_quiescence()
    runtime.add_link(source, target, cost)
    runtime.run_to_quiescence()


class TestVidVersionPruning:
    def test_sweep_bounds_the_version_map_under_churn(self):
        net = topology.ring(5)
        runtime = build_runtime(net, threshold=8)
        rng = random.Random(7)
        edges = sorted((a, b, cost) for (a, b), cost in net.edges.items())
        for _ in range(12):
            source, target, cost = edges[rng.randrange(len(edges))]
            flap(runtime, source, target, cost)

        stats = runtime.provenance.vid_version_stats()
        assert stats["sweeps"] >= 1, stats
        assert stats["pruned"] > 0, stats
        assert stats["epoch"] > 0, stats
        # Liveness bound: whatever survives the last sweep is at most the
        # live vertex population (vids used by or derived by live execs),
        # plus post-sweep churn capped by the geometric retrigger policy.
        live = sum(
            len(store._uses) + len(store._rule_execs)
            for store in runtime.provenance._stores.values()
        )
        assert stats["entries"] <= 2 * live + 16, (stats, live)

    def test_rebirth_after_prune_cannot_revalidate_stale_cache(self):
        """A cached answer taken before a prune/rebirth cycle must never be
        served for the reborn tuple: cached == uncached at every step."""
        net = topology.ring(5)
        runtime = build_runtime(net, threshold=8)
        engine = DistributedQueryEngine(runtime)
        target = ["n0", "n2", 2.0]

        def answers():
            cached = engine.lineage("minCost", target, options=CACHED)
            uncached = engine.lineage("minCost", target, options=UNCACHED)
            assert cached.value == uncached.value
            assert cached.truncated == uncached.truncated
            return sorted(str(ref) for ref in uncached.value)

        before = answers()
        rng = random.Random(3)
        edges = sorted((a, b, cost) for (a, b), cost in net.edges.items())
        for _ in range(10):
            source, target_node, cost = edges[rng.randrange(len(edges))]
            flap(runtime, source, target_node, cost)
            answers()

        stats = runtime.provenance.vid_version_stats()
        assert stats["sweeps"] >= 1, "the schedule never exercised the sweep"
        assert stats["pruned"] > 0, stats
        # The topology is back to the original ring, so the original answer
        # must be reproduced — through the cache — after every flap cycle.
        assert answers() == before

    def test_sweep_never_runs_below_threshold(self):
        runtime = build_runtime(topology.line(3), threshold=65536)
        flap(runtime, "n0", "n1")
        stats = runtime.provenance.vid_version_stats()
        assert stats["sweeps"] == 0, stats
        assert stats["pruned"] == 0, stats
