"""Tests for tamper-evident provenance (the secure-provenance extension)."""

import pytest

from repro.errors import ProvenanceError
from repro.core.keys import BASE_RID
from repro.core.maintenance import RuleExecEntry
from repro.core.security import ProvenanceAuthenticator
from repro.protocols import mincost


@pytest.fixture
def signed_ring(mincost_ring):
    authenticator = ProvenanceAuthenticator()
    authenticator.generate_keys(mincost_ring.node_ids())
    attestations = authenticator.attest_engine(mincost_ring.provenance)
    return mincost_ring, authenticator, attestations


class TestAttestation:
    def test_attestations_cover_every_partition(self, signed_ring):
        runtime, _authenticator, attestations = signed_ring
        assert set(attestations) == set(runtime.node_ids())
        for node_id, attestation in attestations.items():
            store = runtime.provenance.store(node_id)
            assert len(attestation.prov_rows) == store.prov_count
            assert len(attestation.rule_exec_rows) == store.rule_exec_count
            assert attestation.row_count() == store.prov_count + store.rule_exec_count

    def test_attestation_is_deterministic(self, mincost_ring):
        authenticator = ProvenanceAuthenticator()
        authenticator.generate_keys(mincost_ring.node_ids())
        first = authenticator.attest_node(mincost_ring.provenance.store("n0"))
        second = authenticator.attest_node(mincost_ring.provenance.store("n0"))
        assert first.commitment == second.commitment

    def test_missing_key_rejected(self, mincost_ring):
        authenticator = ProvenanceAuthenticator()
        with pytest.raises(ProvenanceError):
            authenticator.attest_node(mincost_ring.provenance.store("n0"))

    def test_different_keys_give_different_commitments(self, mincost_ring):
        a = ProvenanceAuthenticator()
        a.generate_keys(mincost_ring.node_ids(), master_secret=b"one")
        b = ProvenanceAuthenticator()
        b.generate_keys(mincost_ring.node_ids(), master_secret=b"two")
        store = mincost_ring.provenance.store("n0")
        assert a.attest_node(store).commitment != b.attest_node(store).commitment


class TestVerification:
    def test_untampered_engine_verifies_clean(self, signed_ring):
        runtime, authenticator, attestations = signed_ring
        reports = authenticator.verify_engine(runtime.provenance, attestations)
        assert all(report.is_clean for report in reports.values())
        assert "no tampering" in reports["n0"].summary()

    def test_dropped_rows_detected(self, signed_ring):
        runtime, authenticator, attestations = signed_ring
        store = runtime.provenance.store("n1")
        # the compromised node silently drops one of its rule executions
        victim_rid = sorted(store._rule_execs)[0]
        store.remove_rule_exec(victim_rid)
        reports = authenticator.verify_engine(runtime.provenance, attestations)
        assert not reports["n1"].is_clean
        assert reports["n1"].missing_rows
        assert reports["n0"].is_clean
        assert "TAMPERING" in reports["n1"].summary()

    def test_fabricated_rows_detected(self, signed_ring):
        runtime, authenticator, attestations = signed_ring
        store = runtime.provenance.store("n2")
        store.add_rule_exec(
            RuleExecEntry(
                rid="rid_forged",
                rule_name="mc2",
                program_name="mincost",
                child_vids=("vid_fake",),
                head_vid="vid_also_fake",
                head_location="n2",
            )
        )
        reports = authenticator.verify_engine(runtime.provenance, attestations)
        assert not reports["n2"].is_clean
        assert reports["n2"].unexpected_rows

    def test_forged_attestation_detected(self, signed_ring):
        runtime, authenticator, attestations = signed_ring
        tampered = attestations["n3"]
        tampered.prov_rows[0] = ("n3", "vid_fake", BASE_RID, "n3")
        report = authenticator.verify(
            "n3",
            tampered,
            [tuple(row) for row in runtime.provenance.store("n3").prov_table()],
            [tuple(row) for row in runtime.provenance.store("n3").rule_exec_table()],
        )
        assert not report.is_clean
        assert report.modified_rows or report.unexpected_rows or report.missing_rows

    def test_legitimate_updates_require_reattestation(self, signed_ring):
        runtime, authenticator, attestations = signed_ring
        runtime.remove_link("n0", "n1")
        runtime.run_to_quiescence()
        stale_reports = authenticator.verify_engine(runtime.provenance, attestations)
        # state legitimately changed, so the stale attestation no longer matches...
        assert any(not report.is_clean for report in stale_reports.values())
        # ...but re-attesting the new state verifies clean again.
        fresh = authenticator.attest_engine(runtime.provenance)
        fresh_reports = authenticator.verify_engine(runtime.provenance, fresh)
        assert all(report.is_clean for report in fresh_reports.values())
