"""Tests for the in-memory provenance graph model."""

import pytest

from repro.errors import UnknownVertexError
from repro.core.graph import ProvenanceGraph, RuleExecVertex, TupleVertex


def tuple_vertex(vid, relation="r", values=(1,), location="n0", is_base=False):
    return TupleVertex(vid=vid, relation=relation, values=values, location=location, is_base=is_base)


@pytest.fixture
def diamond():
    """A tuple with two alternative derivations sharing one base tuple.

        base_a  base_b      base_a  base_c
            \\   /              \\   /
            exec1               exec2
               \\                /
                +--- derived ---+
    """
    graph = ProvenanceGraph()
    graph.add_tuple(tuple_vertex("base_a", "link", ("a",), "n0", is_base=True))
    graph.add_tuple(tuple_vertex("base_b", "link", ("b",), "n1", is_base=True))
    graph.add_tuple(tuple_vertex("base_c", "link", ("c",), "n2", is_base=True))
    graph.add_tuple(tuple_vertex("derived", "path", ("a", "c"), "n0"))
    graph.add_rule_exec(
        RuleExecVertex(rid="exec1", rule_name="r1", program_name="p", location="n1"),
        ["base_a", "base_b"],
        "derived",
    )
    graph.add_rule_exec(
        RuleExecVertex(rid="exec2", rule_name="r2", program_name="p", location="n2"),
        ["base_a", "base_c"],
        "derived",
    )
    return graph


class TestConstruction:
    def test_counts(self, diamond):
        assert diamond.tuple_count == 4
        assert diamond.rule_exec_count == 2
        assert diamond.edge_count == 6  # 4 input edges + 2 output edges

    def test_vertex_lookup(self, diamond):
        assert diamond.tuple_vertex("base_a").relation == "link"
        assert diamond.rule_exec_vertex("exec1").rule_name == "r1"
        with pytest.raises(UnknownVertexError):
            diamond.tuple_vertex("missing")
        with pytest.raises(UnknownVertexError):
            diamond.rule_exec_vertex("missing")

    def test_find_tuples(self, diamond):
        assert len(diamond.find_tuples("link")) == 3
        assert diamond.find_tuples("path", ("a", "c"))[0].vid == "derived"
        assert diamond.find_tuples("path", ("x",)) == []

    def test_base_flag_merging(self):
        graph = ProvenanceGraph()
        graph.add_tuple(tuple_vertex("v", is_base=False))
        graph.add_tuple(tuple_vertex("v", is_base=True))
        assert graph.tuple_vertex("v").is_base

    def test_mark_base(self, diamond):
        diamond.mark_base("derived")
        assert diamond.tuple_vertex("derived").is_base

    def test_locations(self, diamond):
        assert diamond.locations() == {"n0", "n1", "n2"}


class TestEdges:
    def test_derivations_and_inputs(self, diamond):
        derivations = diamond.derivations_of("derived")
        assert {d.rid for d in derivations} == {"exec1", "exec2"}
        assert {v.vid for v in diamond.inputs_of("exec1")} == {"base_a", "base_b"}
        assert diamond.output_of("exec2").vid == "derived"

    def test_uses_of(self, diamond):
        assert {u.rid for u in diamond.uses_of("base_a")} == {"exec1", "exec2"}
        assert diamond.uses_of("derived") == []


class TestTraversals:
    def test_base_tuples_of(self, diamond):
        lineage = {v.vid for v in diamond.base_tuples_of("derived")}
        assert lineage == {"base_a", "base_b", "base_c"}

    def test_base_tuples_of_base_is_itself(self, diamond):
        assert [v.vid for v in diamond.base_tuples_of("base_a")] == ["base_a"]

    def test_participating_nodes(self, diamond):
        assert diamond.participating_nodes("derived") == {"n0", "n1", "n2"}

    def test_derivation_count_alternatives(self, diamond):
        assert diamond.derivation_count("derived") == 2
        assert diamond.derivation_count("base_a") == 1

    def test_derivation_count_multiplies_through_levels(self):
        graph = ProvenanceGraph()
        graph.add_tuple(tuple_vertex("b1", is_base=True))
        graph.add_tuple(tuple_vertex("b2", is_base=True))
        graph.add_tuple(tuple_vertex("mid"))
        graph.add_tuple(tuple_vertex("top"))
        graph.add_rule_exec(
            RuleExecVertex("e1", "r", "p", "n0"), ["b1"], "mid"
        )
        graph.add_rule_exec(
            RuleExecVertex("e2", "r", "p", "n0"), ["b2"], "mid"
        )
        graph.add_rule_exec(
            RuleExecVertex("e3", "r", "p", "n0"), ["mid"], "top"
        )
        assert graph.derivation_count("mid") == 2
        assert graph.derivation_count("top") == 2

    def test_subgraph_rooted_at(self, diamond):
        subgraph = diamond.subgraph_rooted_at("derived")
        assert subgraph.tuple_count == 4
        assert subgraph.rule_exec_count == 2
        shallow = diamond.subgraph_rooted_at("derived", max_depth=0)
        assert shallow.tuple_count == 1
        assert shallow.rule_exec_count == 0

    def test_affected_tuples_forward(self, diamond):
        affected = diamond.affected_tuples("base_b")
        assert [v.vid for v in affected] == ["derived"]
        assert diamond.affected_tuples("derived") == []

    def test_merge(self, diamond):
        other = ProvenanceGraph()
        other.add_tuple(tuple_vertex("extra", is_base=True))
        other.merge(diamond)
        assert other.tuple_count == 5
        assert other.derivation_count("derived") == 2
