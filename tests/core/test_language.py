"""Tests for the textual provenance query language (ProQL-inspired extension)."""

import pytest

from repro.errors import QueryError
from repro.core.language import WILDCARD, ParsedQuery, QueryLanguage, parse_query
from repro.core.optimizations import TRAVERSAL_SEQUENTIAL
from repro.core.queries import CustomQuery
from repro.core.query import DistributedQueryEngine


class TestParsing:
    def test_minimal_query(self):
        parsed = parse_query('LINEAGE OF minCost("n0", "n2", 2.0)')
        assert parsed.mode == "lineage"
        assert parsed.relation == "minCost"
        assert parsed.pattern == ("n0", "n2", 2.0)
        assert parsed.is_ground()

    def test_keywords_are_case_insensitive(self):
        parsed = parse_query('count of minCost("n0", "n1", 1.0)')
        assert parsed.mode == "count"

    def test_wildcards(self):
        parsed = parse_query('PARTICIPANTS OF minCost("n0", *, *)')
        assert parsed.pattern[0] == "n0"
        assert parsed.pattern[1] is WILDCARD
        assert not parsed.is_ground()
        assert parsed.matches(("n0", "n3", 2.0))
        assert not parsed.matches(("n1", "n3", 2.0))

    def test_bare_identifiers_become_strings(self):
        parsed = parse_query("LINEAGE OF routeEntry(as109, somePrefix, *)")
        assert parsed.pattern[:2] == ("as109", "somePrefix")

    def test_option_clauses(self):
        parsed = parse_query(
            'LINEAGE OF minCost("n0", "n2", 2.0) WITH CACHE SEQUENTIAL THRESHOLD 5 DEPTH 3 FROM "n4"'
        )
        assert parsed.options.use_cache
        assert parsed.options.traversal == TRAVERSAL_SEQUENTIAL
        assert parsed.options.threshold == 5
        assert parsed.options.max_depth == 3
        assert parsed.issued_at == "n4"

    def test_custom_mode_name_is_preserved(self):
        parsed = parse_query('depth OF minCost("n0", "n2", 2.0)')
        assert parsed.mode == "depth"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "LINEAGE minCost(1)",
            "LINEAGE OF",
            "LINEAGE OF minCost(1,)",
            "LINEAGE OF minCost(1) THRESHOLD zero",
            "LINEAGE OF minCost(1) WITH SPEED",
            "LINEAGE OF minCost(1) NONSENSE",
            "LINEAGE OF minCost(1) THRESHOLD 0",
        ],
    )
    def test_malformed_queries_rejected(self, bad):
        with pytest.raises(QueryError):
            parse_query(bad)


class TestExecution:
    @pytest.fixture
    def language(self, mincost_ring):
        return mincost_ring, QueryLanguage(DistributedQueryEngine(mincost_ring))

    def test_ground_query_matches_python_api(self, language):
        runtime, lang = language
        engine = lang.engine
        text_result = lang.run_one('LINEAGE OF minCost("n0", "n2", 2.0)')
        api_result = engine.lineage("minCost", ["n0", "n2", 2.0])
        assert text_result.value == api_result.value

    def test_wildcard_query_returns_one_result_per_match(self, language):
        runtime, lang = language
        results = lang.run('COUNT OF minCost("n0", *, *)')
        assert len(results) == len([r for r in runtime.state("minCost") if r[0] == "n0"])
        assert all(result.mode == "count" for result in results)

    def test_options_are_applied(self, language):
        _runtime, lang = language
        first = lang.run_one('LINEAGE OF minCost("n0", "n2", 2.0) WITH CACHE')
        second = lang.run_one('LINEAGE OF minCost("n0", "n2", 2.0) WITH CACHE')
        assert second.stats.messages == 0
        assert second.value == first.value

    def test_from_clause_issues_query_remotely(self, language):
        _runtime, lang = language
        remote = lang.run_one('LINEAGE OF minCost("n0", "n1", 1.0) FROM "n3"')
        assert remote.stats.messages >= 2

    def test_unknown_mode_rejected(self, language):
        _runtime, lang = language
        with pytest.raises(QueryError):
            lang.run('EXPLODE OF minCost("n0", "n2", 2.0)')

    def test_custom_reducer_usable_from_text(self, language):
        _runtime, lang = language
        lang.engine.register_query(
            CustomQuery(
                name="depth",
                on_base=lambda ref: 0,
                on_exec=lambda ref, children: 1 + max(children, default=0),
                on_tuple=lambda ref, derivations: max(derivations, default=0),
            )
        )
        result = lang.run_one('depth OF minCost("n0", "n2", 2.0)')
        assert result.value >= 2

    def test_no_match_rejected(self, language):
        _runtime, lang = language
        with pytest.raises(QueryError):
            lang.run('LINEAGE OF minCost("n0", "n0", *)')

    def test_run_one_rejects_multi_match(self, language):
        _runtime, lang = language
        with pytest.raises(QueryError):
            lang.run_one('LINEAGE OF minCost("n0", *, *)')
