"""Tests for the query reducers (lineage, participants, count, subgraph, custom)."""

import pytest

from repro.core.queries import (
    BUILTIN_REDUCERS,
    CountReducer,
    CustomQuery,
    ExecRef,
    LineageReducer,
    ParticipantsReducer,
    SubgraphReducer,
    builtin_reducer,
)
from repro.core.results import TupleRef


def ref(relation="link", values=("a", "b"), location="n0"):
    return TupleRef(relation=relation, values=values, location=location)


def exec_ref(rid="rid_1", rule="r1", location="n1"):
    return ExecRef(rid=rid, rule_name=rule, program_name="p", location=location)


class TestLineageReducer:
    reducer = LineageReducer()

    def test_base_value_is_singleton(self):
        assert self.reducer.base_value(ref()) == frozenset({ref()})

    def test_exec_value_unions_children(self):
        value = self.reducer.exec_value(exec_ref(), [frozenset({ref()}), frozenset({ref(values=("x",))})])
        assert len(value) == 2

    def test_tuple_value_with_no_derivations_is_itself(self):
        assert self.reducer.tuple_value(ref(), []) == frozenset({ref()})

    def test_size(self):
        assert self.reducer.size(frozenset({ref(), ref(values=("z",))})) == 2


class TestParticipantsReducer:
    reducer = ParticipantsReducer()

    def test_includes_tuple_and_exec_locations(self):
        child = self.reducer.base_value(ref(location="n0"))
        execution = self.reducer.exec_value(exec_ref(location="n1"), [child])
        combined = self.reducer.tuple_value(ref(location="n2"), [execution])
        assert combined == frozenset({"n0", "n1", "n2"})


class TestCountReducer:
    reducer = CountReducer()

    def test_base_counts_one(self):
        assert self.reducer.base_value(ref()) == 1

    def test_exec_multiplies_children(self):
        assert self.reducer.exec_value(exec_ref(), [2, 3]) == 6

    def test_tuple_sums_alternatives(self):
        assert self.reducer.tuple_value(ref(), [2, 3]) == 5
        assert self.reducer.tuple_value(ref(), []) == 1


class TestSubgraphReducer:
    reducer = SubgraphReducer()

    def test_builds_graph_fragments(self):
        base = self.reducer.base_value(ref())
        assert base.tuple_count == 1
        merged = self.reducer.tuple_value(ref(values=("top",)), [base])
        assert merged.tuple_count == 2

    def test_size_counts_tuples(self):
        assert self.reducer.size(self.reducer.base_value(ref())) == 1


class TestCustomQuery:
    def test_depth_query(self):
        depth = CustomQuery(
            name="depth",
            on_base=lambda tuple_ref: 0,
            on_exec=lambda exec_ref, children: 1 + max(children, default=0),
            on_tuple=lambda tuple_ref, derivations: max(derivations, default=0),
        )
        base = depth.base_value(ref())
        one_level = depth.exec_value(exec_ref(), [base])
        assert depth.tuple_value(ref(), [one_level]) == 1

    def test_default_size(self):
        custom = CustomQuery(
            name="x",
            on_base=lambda tuple_ref: "v",
            on_exec=lambda exec_ref, children: "v",
            on_tuple=lambda tuple_ref, derivations: "v",
        )
        assert custom.size("anything") == 1


class TestRegistry:
    def test_builtin_lookup(self):
        assert builtin_reducer("lineage") is BUILTIN_REDUCERS["lineage"]
        with pytest.raises(KeyError):
            builtin_reducer("unknown")

    def test_builtin_names_match_keys(self):
        for mode, reducer in BUILTIN_REDUCERS.items():
            assert reducer.name == mode
