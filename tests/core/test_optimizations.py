"""Tests for query optimisation settings and the per-node cache."""

import pytest

from repro.core.optimizations import (
    NodeQueryCache,
    QueryOptions,
    TRAVERSAL_PARALLEL,
    TRAVERSAL_SEQUENTIAL,
)


class TestQueryOptions:
    def test_defaults(self):
        options = QueryOptions()
        assert options.traversal == TRAVERSAL_PARALLEL
        assert not options.use_cache
        assert options.threshold is None

    def test_invalid_traversal_rejected(self):
        with pytest.raises(ValueError):
            QueryOptions(traversal="zigzag")

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            QueryOptions(threshold=0)

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            QueryOptions(max_depth=-1)

    def test_cache_key_excludes_traversal_order(self):
        sequential = QueryOptions(traversal=TRAVERSAL_SEQUENTIAL, threshold=5)
        parallel = QueryOptions(traversal=TRAVERSAL_PARALLEL, threshold=5)
        assert sequential.cache_key_part() == parallel.cache_key_part()

    def test_cache_key_includes_pruning(self):
        assert QueryOptions(threshold=5).cache_key_part() != QueryOptions(threshold=9).cache_key_part()

    def test_presets(self):
        assert QueryOptions.baseline().use_cache is False
        optimized = QueryOptions.optimized(threshold=3)
        assert optimized.use_cache and optimized.traversal == TRAVERSAL_SEQUENTIAL


class TestNodeQueryCache:
    def test_miss_then_hit(self):
        cache = NodeQueryCache()
        options = QueryOptions(use_cache=True)
        assert cache.lookup("vid_x", "lineage", options, version=1) is None
        cache.store("vid_x", "lineage", options, version=1, value="answer")
        assert cache.lookup("vid_x", "lineage", options, version=1) == "answer"
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_version_change_invalidates(self):
        cache = NodeQueryCache()
        options = QueryOptions(use_cache=True)
        cache.store("vid_x", "lineage", options, version=1, value="answer")
        assert cache.lookup("vid_x", "lineage", options, version=2) is None
        # the stale entry is evicted
        assert len(cache) == 0

    def test_mode_and_options_isolate_entries(self):
        cache = NodeQueryCache()
        options_a = QueryOptions(use_cache=True, threshold=None)
        options_b = QueryOptions(use_cache=True, threshold=2)
        cache.store("vid_x", "lineage", options_a, version=1, value="full")
        assert cache.lookup("vid_x", "count", options_a, version=1) is None
        assert cache.lookup("vid_x", "lineage", options_b, version=1) is None

    def test_clear(self):
        cache = NodeQueryCache()
        cache.store("vid_x", "lineage", QueryOptions(), version=1, value="v")
        cache.clear()
        assert len(cache) == 0


class TestCacheCapacityAndSweep:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            NodeQueryCache(capacity=0)
        with pytest.raises(ValueError):
            NodeQueryCache(capacity=-3)

    def test_lru_eviction_order(self):
        cache = NodeQueryCache(capacity=2)
        options = QueryOptions(use_cache=True)
        cache.store("vid_a", "lineage", options, version=1, value="A")
        cache.store("vid_b", "lineage", options, version=1, value="B")
        assert cache.lookup("vid_a", "lineage", options, version=1) == "A"  # refresh A
        cache.store("vid_c", "lineage", options, version=1, value="C")  # evicts B
        assert cache.evictions == 1
        assert cache.lookup("vid_b", "lineage", options, version=1) is None
        assert cache.lookup("vid_a", "lineage", options, version=1) == "A"
        assert cache.lookup("vid_c", "lineage", options, version=1) == "C"

    def test_sweep_prefers_dead_entries_over_live_evictions(self):
        current = {"vid_a": 1, "vid_b": 1, "vid_c": 1, "vid_d": 1}
        cache = NodeQueryCache(capacity=3, version_fn=current.__getitem__)
        options = QueryOptions(use_cache=True)
        cache.store("vid_a", "lineage", options, version=1, value="A")
        cache.store("vid_b", "lineage", options, version=1, value="B")
        cache.store("vid_c", "lineage", options, version=1, value="C")
        current["vid_b"] = 2  # vid_b's subtree churns: its entry is now dead
        cache.store("vid_d", "lineage", options, version=1, value="D")  # overflows
        # The dead entry was swept; no live entry was sacrificed.
        assert cache.stale_dropped == 1
        assert cache.evictions == 0
        assert len(cache) == 3
        assert cache.lookup("vid_a", "lineage", options, version=1) == "A"

    def test_store_rejects_stillborn_entries(self):
        """A tag already superseded by churn (capture-at-start race or an
        in-flight reply) never occupies a slot."""
        current = {"vid_a": 5}
        cache = NodeQueryCache(capacity=None, version_fn=current.__getitem__)
        options = QueryOptions(use_cache=True)
        cache.store("vid_a", "lineage", options, version=4, value="stale")
        assert len(cache) == 0
        assert cache.stores == 0
        assert cache.stale_dropped == 1

    def test_manual_sweep_reports_drop_count(self):
        current = {"vid_a": 4, "vid_b": 1}
        cache = NodeQueryCache(capacity=None, version_fn=current.__getitem__)
        options = QueryOptions(use_cache=True)
        cache.store("vid_a", "lineage", options, version=4, value="doomed")
        cache.store("vid_b", "lineage", options, version=1, value="live")
        current["vid_a"] = 5  # vid_a's subtree churns after the store
        assert cache.sweep() == 1
        assert len(cache) == 1
        assert cache.stale_dropped == 1
        assert cache.lookup("vid_b", "lineage", options, version=1) == "live"

    def test_sweep_without_version_fn_is_noop(self):
        cache = NodeQueryCache(capacity=None)
        cache.store("vid_a", "lineage", QueryOptions(), version=1, value="v")
        assert cache.sweep() == 0
        assert len(cache) == 1

    def test_uncapped_cache_never_evicts(self):
        cache = NodeQueryCache(capacity=None)
        options = QueryOptions(use_cache=True)
        for index in range(1000):
            cache.store(f"vid_{index}", "lineage", options, version=1, value=index)
        assert len(cache) == 1000
        assert cache.evictions == 0

    def test_stale_lookup_counts_stale_dropped(self):
        cache = NodeQueryCache()
        options = QueryOptions(use_cache=True)
        cache.store("vid_x", "lineage", options, version=1, value="old")
        assert cache.lookup("vid_x", "lineage", options, version=2) is None
        assert cache.stale_dropped == 1

    def test_counters_shape(self):
        cache = NodeQueryCache()
        assert dict(cache.counters()) == {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "evictions": 0,
            "stale_dropped": 0,
            "entries": 0,
        }

    def test_sweep_skipped_while_clock_unchanged(self):
        current = {"vid_a": 1, "vid_b": 1, "vid_c": 1}
        probes = []

        def version_fn(vid):
            probes.append(vid)
            return current[vid]

        clock = [7]
        cache = NodeQueryCache(capacity=2, version_fn=version_fn, clock_fn=lambda: clock[0])
        options = QueryOptions(use_cache=True)
        cache.store("vid_a", "lineage", options, version=1, value="A")  # first sweep runs
        baseline_probes = len(probes)
        # While the clock is unchanged nothing can have died: each store
        # pays exactly one O(1) validation probe, never an O(entries) sweep.
        cache.store("vid_b", "lineage", options, version=1, value="B")
        assert len(probes) == baseline_probes + 1
        cache.store("vid_c", "lineage", options, version=1, value="C")  # overflow: LRU only
        assert len(probes) == baseline_probes + 2
        assert cache.evictions == 1
        # Once the clock moves, sweeping resumes and reclaims dead entries
        # instead of evicting live ones.
        current["vid_b"] = 2  # vid_b's entry (still resident) dies
        clock[0] = 8
        cache.store("vid_a", "lineage", options, version=1, value="A2")
        assert cache.stale_dropped == 1
        assert cache.evictions == 1  # the freed slot came from the sweep
        assert cache.lookup("vid_b", "lineage", options, version=1) is None
        assert cache.lookup("vid_c", "lineage", options, version=1) == "C"
