"""Tests for query optimisation settings and the per-node cache."""

import pytest

from repro.core.optimizations import (
    NodeQueryCache,
    QueryOptions,
    TRAVERSAL_PARALLEL,
    TRAVERSAL_SEQUENTIAL,
)


class TestQueryOptions:
    def test_defaults(self):
        options = QueryOptions()
        assert options.traversal == TRAVERSAL_PARALLEL
        assert not options.use_cache
        assert options.threshold is None

    def test_invalid_traversal_rejected(self):
        with pytest.raises(ValueError):
            QueryOptions(traversal="zigzag")

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            QueryOptions(threshold=0)

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            QueryOptions(max_depth=-1)

    def test_cache_key_excludes_traversal_order(self):
        sequential = QueryOptions(traversal=TRAVERSAL_SEQUENTIAL, threshold=5)
        parallel = QueryOptions(traversal=TRAVERSAL_PARALLEL, threshold=5)
        assert sequential.cache_key_part() == parallel.cache_key_part()

    def test_cache_key_includes_pruning(self):
        assert QueryOptions(threshold=5).cache_key_part() != QueryOptions(threshold=9).cache_key_part()

    def test_presets(self):
        assert QueryOptions.baseline().use_cache is False
        optimized = QueryOptions.optimized(threshold=3)
        assert optimized.use_cache and optimized.traversal == TRAVERSAL_SEQUENTIAL


class TestNodeQueryCache:
    def test_miss_then_hit(self):
        cache = NodeQueryCache()
        options = QueryOptions(use_cache=True)
        assert cache.lookup("vid_x", "lineage", options, version=1) is None
        cache.store("vid_x", "lineage", options, version=1, value="answer")
        assert cache.lookup("vid_x", "lineage", options, version=1) == "answer"
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_version_change_invalidates(self):
        cache = NodeQueryCache()
        options = QueryOptions(use_cache=True)
        cache.store("vid_x", "lineage", options, version=1, value="answer")
        assert cache.lookup("vid_x", "lineage", options, version=2) is None
        # the stale entry is evicted
        assert len(cache) == 0

    def test_mode_and_options_isolate_entries(self):
        cache = NodeQueryCache()
        options_a = QueryOptions(use_cache=True, threshold=None)
        options_b = QueryOptions(use_cache=True, threshold=2)
        cache.store("vid_x", "lineage", options_a, version=1, value="full")
        assert cache.lookup("vid_x", "count", options_a, version=1) is None
        assert cache.lookup("vid_x", "lineage", options_b, version=1) is None

    def test_clear(self):
        cache = NodeQueryCache()
        cache.store("vid_x", "lineage", QueryOptions(), version=1, value="v")
        cache.clear()
        assert len(cache) == 0
