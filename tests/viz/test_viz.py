"""Tests for the visualization substitutes (hypertree, provenance and topology views)."""

import json
import math

import pytest

from repro.errors import VisualizationError
from repro.core.keys import vid_for
from repro.engine import topology
from repro.engine.tuples import Fact
from repro.protocols import mincost
from repro.viz import (
    HypertreeLayout,
    exploration_views,
    provenance_to_dot,
    provenance_to_json,
    refocus,
    render_ascii_tree,
    topology_summary,
    topology_to_dot,
)
from repro.viz.hypertree import transition_positions


@pytest.fixture
def graph_and_root(mincost_ring):
    graph = mincost_ring.provenance.build_graph()
    root = vid_for(Fact.make("minCost", ["n0", "n2", 2.0]))
    return graph, root


class TestHypertree:
    def test_all_vertices_inside_unit_disk(self, graph_and_root):
        graph, root = graph_and_root
        layout = HypertreeLayout().compute(graph, root)
        assert layout[root].radius == 0.0
        assert all(placed.radius < 1.0 for placed in layout.values())

    def test_deeper_vertices_are_farther_out(self, graph_and_root):
        graph, root = graph_and_root
        layout = HypertreeLayout().compute(graph, root)
        by_depth = {}
        for placed in layout.values():
            by_depth.setdefault(placed.depth, []).append(placed.radius)
        depths = sorted(by_depth)
        for shallow, deep in zip(depths, depths[1:]):
            assert max(by_depth[shallow]) < min(by_depth[deep]) + 1e-9

    def test_layout_covers_the_provenance_subtree(self, graph_and_root):
        graph, root = graph_and_root
        layout = HypertreeLayout().compute(graph, root)
        subgraph = graph.subgraph_rooted_at(root)
        assert len(layout) == subgraph.tuple_count + subgraph.rule_exec_count

    def test_unknown_root_rejected(self, graph_and_root):
        graph, _ = graph_and_root
        with pytest.raises(VisualizationError):
            HypertreeLayout().compute(graph, "vid_missing")

    def test_invalid_level_distance_rejected(self):
        with pytest.raises(VisualizationError):
            HypertreeLayout(level_distance=0)

    def test_refocus_moves_focus_to_centre_and_stays_in_disk(self, graph_and_root):
        graph, root = graph_and_root
        layout = HypertreeLayout().compute(graph, root)
        focus = next(vertex_id for vertex_id in layout if vertex_id != root)
        refocused = refocus(layout, focus)
        assert refocused[focus].radius < 1e-9
        assert all(placed.radius < 1.0 + 1e-9 for placed in refocused.values())

    def test_refocus_unknown_vertex_rejected(self, graph_and_root):
        graph, root = graph_and_root
        layout = HypertreeLayout().compute(graph, root)
        with pytest.raises(VisualizationError):
            refocus(layout, "nope")

    def test_transition_frames_end_at_refocus(self, graph_and_root):
        graph, root = graph_and_root
        layout = HypertreeLayout().compute(graph, root)
        focus = next(vertex_id for vertex_id in layout if vertex_id != root)
        frames = transition_positions(layout, focus, steps=4)
        assert len(frames) == 4
        final = frames[-1]
        expected = refocus(layout, focus)
        assert final[focus].radius == pytest.approx(expected[focus].radius, abs=1e-9)
        for frame in frames:
            assert all(placed.radius < 1.0 + 1e-9 for placed in frame.values())


class TestProvenanceRendering:
    def test_dot_output_mentions_vertices_and_edges(self, graph_and_root):
        graph, root = graph_and_root
        dot = provenance_to_dot(graph)
        assert dot.startswith("digraph")
        assert "minCost" in dot and "->" in dot
        assert "peripheries=2" in dot  # base tuples drawn with a double border

    def test_json_output_is_valid_json(self, graph_and_root):
        graph, _ = graph_and_root
        payload = json.loads(provenance_to_json(graph))
        assert len(payload["tuples"]) == graph.tuple_count
        assert len(payload["rule_executions"]) == graph.rule_exec_count

    def test_ascii_tree_shows_base_links(self, graph_and_root):
        graph, root = graph_and_root
        text = render_ascii_tree(graph, root)
        assert "minCost(n0, n2, 2.0)@n0" in text
        assert "[base] link(n0, n1, 1.0)@n0" in text
        assert "[base] link(n1, n2, 1.0)@n1" in text

    def test_ascii_tree_unknown_root_rejected(self, graph_and_root):
        graph, _ = graph_and_root
        with pytest.raises(VisualizationError):
            render_ascii_tree(graph, "vid_missing")

    def test_exploration_views_figure2_levels(self, graph_and_root):
        graph, _ = graph_and_root
        views = exploration_views(graph, "minCost", ("n0", "n2", 2.0))
        assert set(views) == {"snapshot", "table", "tuple"}
        assert "tuple vertices" in views["snapshot"]
        assert "minCost" in views["table"]
        assert "location:   n0" in views["tuple"]
        assert "derivations (1)" in views["tuple"]

    def test_exploration_views_unknown_tuple_rejected(self, graph_and_root):
        graph, _ = graph_and_root
        with pytest.raises(VisualizationError):
            exploration_views(graph, "minCost", ("n0", "n2", 99.0))


class TestTopologyRendering:
    def test_dot_output(self, ring5):
        dot = topology_to_dot(ring5)
        assert dot.startswith("graph")
        assert '"n0" -- "n1"' in dot

    def test_summary_includes_stats(self, mincost_ring, ring5):
        summary = topology_summary(ring5, mincost_ring.network.stats.snapshot())
        assert "nodes: 5" in summary
        assert "links: 5" in summary
        assert "messages:" in summary

    def test_summary_without_traffic(self, ring5):
        assert "traffic" not in topology_summary(ring5)
