"""Analysis tasks cross-checked through both distributed query paths.

``root_causes`` and ``cascading_effects`` are offline, whole-graph
computations; the distributed query engine answers the same questions
online — via the reference traversal or via the interval-indexed path.
These tests pin the three-way agreement: for the same tuples, the offline
analysis, the traversal engine and the interval engine must name exactly
the same base tuples and exhibit consistent forward/backward views.

The two engines are constructed strictly in sequence (a runtime's per-node
query handlers belong to whichever engine was constructed last), mirroring
the differential property harness.
"""

from __future__ import annotations

import pytest

from repro.analysis import cascading_effects, impact_of_link_failure, root_causes
from repro.core.optimizations import QueryOptions
from repro.core.query import DistributedQueryEngine

BASELINE = QueryOptions(use_cache=False)

#: Deep-ish minCost tuples of the ring5 fixture (two-hop derivations).
TARGETS = (
    ["n0", "n2", 2.0],
    ["n0", "n3", 2.0],
    ["n1", "n4", 2.0],
)


@pytest.fixture
def graph(mincost_ring):
    return mincost_ring.provenance.build_graph()


def base_tuple_set(vertices):
    return {(vertex.relation,) + tuple(vertex.values) for vertex in vertices}


def lineage_tuple_set(result):
    return {(ref.relation,) + tuple(ref.values) for ref in result.value}


def query_path_lineages(runtime, targets):
    """Lineage answers per target from the traversal and interval engines."""
    traversal = DistributedQueryEngine(runtime, use_interval_index=False)
    by_traversal = [
        lineage_tuple_set(traversal.lineage("minCost", values, options=BASELINE))
        for values in targets
    ]
    interval = DistributedQueryEngine(runtime, use_interval_index=True)
    by_interval = [
        lineage_tuple_set(interval.lineage("minCost", values, options=BASELINE))
        for values in targets
    ]
    return by_traversal, by_interval


class TestRootCauseThroughQueryPaths:
    def test_offline_root_causes_match_both_engines(self, mincost_ring, graph):
        offline = [
            base_tuple_set(root_causes(graph, "minCost", values)) for values in TARGETS
        ]
        by_traversal, by_interval = query_path_lineages(mincost_ring, TARGETS)
        for values, expected, traversed, indexed in zip(
            TARGETS, offline, by_traversal, by_interval
        ):
            assert traversed == expected, values
            assert indexed == expected, values

    def test_remote_coordinator_interval_wave_matches_offline(self, mincost_ring, graph):
        """Issuing the interval query from a node that is not the tuple's
        home still reproduces the offline root causes (the wave has to ship
        the root's home partition an interval request first)."""
        values = TARGETS[0]
        offline = base_tuple_set(root_causes(graph, "minCost", values))
        interval = DistributedQueryEngine(mincost_ring, use_interval_index=True)
        answer = interval.lineage("minCost", values, options=BASELINE, at="n3")
        assert lineage_tuple_set(answer) == offline
        assert answer.stats.messages > 0, "a remote coordinator must pay messages"


class TestCascadeThroughQueryPaths:
    def test_forward_cascade_is_backward_lineage_inverted(self, mincost_ring, graph):
        """Every minCost tuple the link (transitively) supports must list the
        link among its base lineage — on both query paths."""
        link = ("link", "n0", "n1", 1.0)
        affected = [
            list(vertex.values)
            for vertex in cascading_effects(graph, "link", list(link[1:]))
            if vertex.relation == "minCost"
        ]
        assert affected, "the link must support at least one minCost tuple"
        by_traversal, by_interval = query_path_lineages(mincost_ring, affected)
        for values, traversed, indexed in zip(affected, by_traversal, by_interval):
            assert link in traversed, values
            assert link in indexed, values
        # And a tuple outside the forward cascade must not list the link.
        outside = [
            list(row)
            for row in sorted(mincost_ring.state("minCost"), key=repr)
            if list(row) not in affected
        ][:2]
        if outside:
            out_traversal, out_interval = query_path_lineages(mincost_ring, outside)
            for values, traversed, indexed in zip(outside, out_traversal, out_interval):
                assert link not in traversed, values
                assert link not in indexed, values

    def test_actual_link_failure_stays_within_the_predicted_cascade(
        self, mincost_ring, graph
    ):
        """impact_of_link_failure removals are a subset of the potential
        cascade the provenance graph predicts, and the interval path keeps
        answering correctly across the failure/restore churn."""
        # Links are symmetric: failing n0 <-> n1 retracts both directed base
        # tuples, so the predicted cascade is the union over both directions.
        predicted = {
            (vertex.relation,) + tuple(vertex.values)
            for values in (["n0", "n1", 1.0], ["n1", "n0", 1.0])
            for vertex in cascading_effects(graph, "link", values)
        }
        impact = impact_of_link_failure(mincost_ring, "n0", "n1")
        assert impact.restored
        removed = {
            (relation,) + tuple(row)
            for relation, rows in impact.removed_tuples.items()
            for row in rows
        }
        assert removed, "failing a ring link must remove derived state"
        assert removed <= predicted, removed - predicted

        # Post-restore, both query paths still agree on the original targets
        # (the churn exercised the index's incremental maintenance).
        by_traversal, by_interval = query_path_lineages(mincost_ring, TARGETS)
        assert by_interval == by_traversal
        totals = mincost_ring.provenance.interval_totals()
        assert totals.get("range_scans", 0) > 0
