"""Tests for the diagnostic tasks: root cause, cascading effects, participants."""

import pytest

from repro.errors import ProvenanceError
from repro.analysis import (
    cascading_effects,
    explain_derivation,
    impact_of_link_failure,
    participant_contributions,
    participating_nodes,
    root_causes,
)
from repro.engine import topology
from repro.protocols import mincost, path_vector


@pytest.fixture
def graph(mincost_ring):
    return mincost_ring.provenance.build_graph()


class TestRootCause:
    def test_root_causes_are_the_underlying_links(self, graph):
        causes = root_causes(graph, "minCost", ["n0", "n2", 2.0])
        assert {(v.relation,) + v.values for v in causes} == {
            ("link", "n0", "n1", 1.0),
            ("link", "n1", "n2", 1.0),
        }

    def test_root_cause_of_base_tuple_is_itself(self, graph):
        causes = root_causes(graph, "link", ["n0", "n1", 1.0])
        assert len(causes) == 1 and causes[0].is_base

    def test_unknown_tuple_rejected(self, graph):
        with pytest.raises(ProvenanceError):
            root_causes(graph, "minCost", ["n0", "n2", 42.0])

    def test_explanation_mentions_rules_and_root_causes(self, graph):
        text = explain_derivation(graph, "minCost", ["n0", "n2", 2.0])
        assert "derived by rule mc3" in text
        assert "root cause" in text
        assert "link(n0, n1, 1.0)@n0" in text

    def test_explanation_depth_limit(self, graph):
        shallow = explain_derivation(graph, "minCost", ["n0", "n2", 2.0], max_depth=1)
        full = explain_derivation(graph, "minCost", ["n0", "n2", 2.0])
        assert len(shallow.splitlines()) < len(full.splitlines())


class TestCascade:
    def test_potential_effects_of_a_link(self, graph):
        affected = cascading_effects(graph, "link", ["n0", "n1", 1.0])
        relations = {vertex.relation for vertex in affected}
        assert "minCost" in relations and "path" in relations
        # the link n0->n1 contributes to minCost(n0, n1)
        assert any(
            vertex.relation == "minCost" and vertex.values == ("n0", "n1", 1.0)
            for vertex in affected
        )

    def test_unknown_tuple_rejected(self, graph):
        with pytest.raises(ProvenanceError):
            cascading_effects(graph, "link", ["n0", "n9", 1.0])

    def test_actual_impact_of_link_failure(self, ring5):
        runtime = mincost.setup(ring5)
        impact = impact_of_link_failure(runtime, "n0", "n1")
        assert impact.removed_count() > 0
        assert impact.added_count() > 0  # replacement (longer) paths appear
        assert "minCost" in impact.removed_tuples or "minCost" in impact.added_tuples
        assert impact.restored
        # restoring the link brings the original state back
        assert mincost.check_against_reference(runtime, ring5)
        assert "minCost" in impact.summary()

    def test_impact_without_restore(self, line4):
        runtime = path_vector.setup(line4)
        impact = impact_of_link_failure(runtime, "n1", "n2", restore=False)
        assert not impact.restored
        assert not runtime.topology.has_edge("n1", "n2")

    def test_impact_of_missing_link_rejected(self, mincost_ring):
        with pytest.raises(ProvenanceError):
            impact_of_link_failure(mincost_ring, "n0", "n2")


class TestParticipants:
    def test_participants_match_distributed_query(self, mincost_ring, graph):
        from repro.core.query import DistributedQueryEngine

        queries = DistributedQueryEngine(mincost_ring)
        offline = participating_nodes(graph, "minCost", ["n0", "n2", 2.0])
        online = queries.participants("minCost", ["n0", "n2", 2.0]).value
        assert offline == set(online)

    def test_contributions_cover_participants(self, graph):
        contributions = participant_contributions(graph, "minCost", ["n0", "n2", 2.0])
        assert set(contributions) == participating_nodes(graph, "minCost", ["n0", "n2", 2.0])
        assert all(entry["tuples"] > 0 for entry in contributions.values())
        assert sum(entry["rule_executions"] for entry in contributions.values()) > 0
