"""Shared fixtures and equivalence helpers for the NetTrails test suite."""

from __future__ import annotations

import os

import pytest

from repro.engine import topology
from repro.engine.backends import BACKENDS, BACKEND_ENV_VAR, default_backend_name
from repro.protocols import mincost, path_vector


# ---------------------------------------------------------------------------
# Execution-backend matrix hook
#
# ``NETTRAILS_BACKEND`` selects the execution backend every runtime in the
# suite defaults to (serial | thread | asyncio).  The CI property-matrix jobs
# export it to run the whole property suite — including every equivalence
# harness — under each backend; any value other than the deterministic
# default would surface as a failed equivalence assertion if a backend ever
# diverged from the serial reference.
# ---------------------------------------------------------------------------


def pytest_configure(config):
    spec = os.environ.get(BACKEND_ENV_VAR)
    if spec and spec not in BACKENDS:
        raise pytest.UsageError(
            f"{BACKEND_ENV_VAR}={spec!r} is not a known execution backend; "
            f"choose one of {sorted(BACKENDS)}"
        )


def pytest_report_header(config):
    return f"nettrails: execution backend = {default_backend_name()} ({BACKEND_ENV_VAR})"


@pytest.fixture(scope="session")
def backend_name() -> str:
    """The execution backend the suite is running under (see NETTRAILS_BACKEND)."""
    return default_backend_name()


# ---------------------------------------------------------------------------
# Equivalence helpers
#
# The central correctness claim of the reproduction is that every execution
# strategy (per-delta vs batched, sharded vs unsharded, serial vs threaded)
# converges to indistinguishable global state.  These canonicalisers are the
# shared definition of "indistinguishable"; they are exposed both as plain
# functions (for conftest-local use) and as identically-named fixtures so any
# test module can request them without import-path games.
# ---------------------------------------------------------------------------


def _provenance_fingerprint(runtime):
    """A canonical representation of the distributed provenance tables."""
    rows = set()
    provenance = runtime.provenance
    for node_id in runtime.node_ids():
        store = provenance.store(node_id)
        for row in store.prov_table():
            rows.add(("prov",) + row)
        for loc, rid, rule, program, children in store.rule_exec_table():
            rows.add(("ruleExec", loc, rid, rule, program, tuple(children)))
    return rows


def _global_state(runtime, relations):
    """Sorted global contents of the given relations."""
    return {relation: sorted(runtime.state(relation), key=repr) for relation in relations}


def _store_snapshots(runtime):
    """Per-node canonical store snapshots (values + derivation counts)."""
    return {
        repr(node_id): runtime.nodes[node_id].store.snapshot()
        for node_id in runtime.node_ids()
    }


@pytest.fixture
def provenance_fingerprint():
    return _provenance_fingerprint


@pytest.fixture
def global_state():
    return _global_state


@pytest.fixture
def store_snapshots():
    return _store_snapshots


@pytest.fixture
def ring5():
    """A 5-node ring with unit link costs."""
    return topology.ring(5)


@pytest.fixture
def line4():
    """A 4-node chain with unit link costs."""
    return topology.line(4)


@pytest.fixture
def small_random():
    """A deterministic 8-node random connected topology."""
    return topology.random_connected(8, edge_probability=0.3, seed=7)


@pytest.fixture
def mincost_ring(ring5):
    """A converged MINCOST runtime over the 5-node ring (provenance enabled)."""
    return mincost.setup(ring5)


@pytest.fixture
def pathvector_line(line4):
    """A converged path-vector runtime over the 4-node chain."""
    return path_vector.setup(line4)
