"""Shared fixtures for the NetTrails reproduction test suite."""

from __future__ import annotations

import pytest

from repro.engine import topology
from repro.protocols import mincost, path_vector


@pytest.fixture
def ring5():
    """A 5-node ring with unit link costs."""
    return topology.ring(5)


@pytest.fixture
def line4():
    """A 4-node chain with unit link costs."""
    return topology.line(4)


@pytest.fixture
def small_random():
    """A deterministic 8-node random connected topology."""
    return topology.random_connected(8, edge_probability=0.3, seed=7)


@pytest.fixture
def mincost_ring(ring5):
    """A converged MINCOST runtime over the 5-node ring (provenance enabled)."""
    return mincost.setup(ring5)


@pytest.fixture
def pathvector_line(line4):
    """A converged path-vector runtime over the 4-node chain."""
    return path_vector.setup(line4)
