"""Tests for the Zipf-skewed query-mix generators."""

import random
from collections import Counter

import pytest

from repro.engine import topology
from repro.protocols import mincost
from repro.workloads import QueryMixSpec, query_wave
from repro.workloads.queries import ZipfSampler, weighted_choice


class TestZipfSampler:
    def test_rank_zero_dominates(self):
        sampler = ZipfSampler(20, s=1.2)
        rng = random.Random(3)
        counts = Counter(sampler.sample(rng) for _ in range(2000))
        assert counts[0] > counts[1] > counts[10]

    def test_all_ranks_reachable(self):
        sampler = ZipfSampler(5, s=0.5)
        rng = random.Random(3)
        assert set(sampler.sample(rng) for _ in range(2000)) == set(range(5))

    def test_deterministic_for_seeded_rng(self):
        draws = [
            [ZipfSampler(10, s=1.3).sample(random.Random(7)) for _ in range(5)]
            for _ in range(2)
        ]
        assert draws[0] == draws[1]

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)


class TestWeightedChoice:
    def test_degenerate_mix_always_picks_the_only_entry(self):
        rng = random.Random(1)
        assert all(
            weighted_choice(rng, (("lineage", 1.0),)) == "lineage" for _ in range(10)
        )

    def test_weights_shape_the_distribution(self):
        rng = random.Random(5)
        counts = Counter(
            weighted_choice(rng, (("a", 0.9), ("b", 0.1))) for _ in range(1000)
        )
        assert counts["a"] > counts["b"] * 4


class TestQueryWave:
    def test_empty_relation_yields_empty_wave(self):
        mix = QueryMixSpec(relation="minCost")
        assert query_wave(random.Random(1), mix, []) == []

    def test_wave_respects_mix_and_is_deterministic(self):
        rows = [("n0", "n1", 1.0), ("n1", "n0", 1.0), ("n0", "n2", 2.0)]
        mix = QueryMixSpec(
            relation="minCost",
            queries_per_wave=4,
            modes=(("lineage", 0.5), ("participants", 0.5)),
            traversals=(("sequential", 1.0),),
            use_cache=False,
        )
        waves = [query_wave(random.Random(9), mix, rows) for _ in range(2)]
        assert waves[0] == waves[1]
        for call in waves[0]:
            assert call.mode in ("lineage", "participants")
            assert call.relation == "minCost"
            assert tuple(call.values) in rows
            assert call.options.traversal == "sequential"
            assert call.options.use_cache is False

    def test_calls_issue_against_a_live_engine(self):
        from repro.core.query import DistributedQueryEngine

        runtime = mincost.setup(topology.ring(4))
        engine = DistributedQueryEngine(runtime)
        mix = QueryMixSpec(relation="minCost", queries_per_wave=2)
        wave = query_wave(random.Random(2), mix, runtime.state("minCost"))
        for call in wave:
            result = call.issue(engine)
            assert result.value, call
