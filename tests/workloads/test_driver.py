"""Tests for the scenario driver and its metrics reports."""

import json

import pytest

from repro.errors import EngineError
from repro.protocols import prefix_routing
from repro.workloads import (
    ChurnPhase,
    QueryMixSpec,
    ScenarioDriver,
    ScenarioSpec,
    TopologySpec,
    build_profile,
    run_scenario,
    smoke,
)


def tiny_spec(**overrides):
    fields = dict(
        name="tiny",
        topology=TopologySpec.make("star", count=5),
        protocol="prefix_routing",
        seed=7,
        churn=(
            ChurnPhase.make(
                "prefix_announce_withdraw", batches=3, prefixes=1, origins_per_prefix=2
            ),
            ChurnPhase.make("link_flap", batches=2, flaps_per_batch=1),
        ),
        queries=QueryMixSpec(relation="best", queries_per_wave=1, wave_every=2),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestScenarioDriver:
    def test_run_produces_a_consistent_report(self):
        report = run_scenario(tiny_spec())
        assert report.scenario == "tiny"
        assert report.nodes == 5
        phase_names = {phase.name for phase in report.phases}
        assert {"seed", "prefix_announce_withdraw", "link_flap"} <= phase_names
        totals = report.totals()
        for key, value in totals.items():
            assert value == sum(getattr(phase, key) for phase in report.phases), key
        assert totals["messages"] > 0 and totals["events"] > 0
        assert report.phase("seed").deltas == 8  # 4 spokes, both directions

    def test_converged_state_matches_protocol_reference(self):
        spec = tiny_spec(churn=(
            ChurnPhase.make(
                "prefix_announce_withdraw", batches=1, prefixes=2, origins_per_prefix=1
            ),
        ), queries=None)
        with ScenarioDriver(spec) as driver:
            driver.run()
            origins = [
                (values[0], values[1])
                for values in driver.runtime.state("prefix")
            ]
            assert origins
            assert prefix_routing.check_against_reference(
                driver.runtime, driver.runtime.topology, origins
            )

    def test_batch_size_rechunks_windows(self):
        native = run_scenario(tiny_spec())
        tiny_windows = run_scenario(tiny_spec(batch_size=1))
        one_window = run_scenario(tiny_spec(batch_size=10_000))
        churn = lambda report: report.totals()["batches"] - report.phase("seed").batches
        assert churn(tiny_windows) == (
            tiny_windows.totals()["ops"] - tiny_windows.phase("seed").ops
        )
        assert churn(one_window) == 1
        assert churn(tiny_windows) > churn(native) >= churn(one_window)

    def test_query_waves_interleave_and_fill_cache_counters(self):
        report = run_scenario(tiny_spec())
        assert report.totals()["queries"] > 0
        assert report.cache, "query waves must surface cache counters"
        assert report.cache["hits"] + report.cache["misses"] > 0

    def test_run_twice_rejected(self):
        with ScenarioDriver(tiny_spec()) as driver:
            driver.run()
            with pytest.raises(EngineError, match="only be called once"):
                driver.run()

    def test_unknown_protocol_rejected(self):
        with pytest.raises(EngineError, match="unknown protocol"):
            ScenarioDriver(tiny_spec(protocol="ospf"))

    def test_report_to_dict_is_json_serialisable(self):
        document = json.loads(json.dumps(run_scenario(tiny_spec()).to_dict()))
        assert document["scenario"] == "tiny"
        assert all("seconds" in phase for phase in document["phases"])

    def test_knobs_reach_the_runtime(self):
        spec = tiny_spec().with_knobs(
            num_shards=2, query_cache_capacity=3, backend="thread", backend_workers=2
        )
        with ScenarioDriver(spec) as driver:
            assert driver.runtime.backend.name == "thread"
            assert driver.runtime.num_shards == 2
            assert driver.runtime.query_cache_capacity == 3
            driver.run()


class TestProfiles:
    def test_build_profile_resolves_and_sweeps(self):
        spec = build_profile("smoke", seed=3, batch_size=4)
        assert spec.name == "smoke"
        assert spec.seed == 3
        assert spec.batch_size == 4

    def test_unknown_profile_rejected(self):
        with pytest.raises(EngineError, match="unknown profile"):
            build_profile("galactic")

    def test_smoke_profile_is_ci_sized(self):
        spec = smoke()
        net = spec.topology.build()
        assert net.node_count() <= 16
        report = run_scenario(spec)
        assert report.seconds < 10, "smoke must stay seconds-fast for CI"

    def test_scale_profiles_are_1000_plus_nodes(self):
        from repro.workloads.profiles import scale

        for kind in ("isp_hierarchy", "power_law"):
            net = scale(topology_kind=kind).topology.build()
            assert net.node_count() >= 1000, kind
            assert net.is_connected(), kind

    def test_scale_rejects_unknown_topology_kind(self):
        from repro.workloads.profiles import scale

        with pytest.raises(EngineError, match="topology_kind"):
            scale(topology_kind="donut")
