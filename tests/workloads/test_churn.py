"""Tests for the seeded churn generators and trace machinery."""

import copy
import random

import pytest

from repro.engine import topology
from repro.errors import EngineError
from repro.workloads import ChurnOp, scenario_trace, trace_digest
from repro.workloads.churn import (
    GENERATORS,
    hot_hub_skew,
    link_flap,
    node_fail_recover,
    prefix_announce_withdraw,
    random_link_churn,
)
from repro.workloads.profiles import demo, smoke


def replay_on_mirror(mirror, batches):
    """Validate every op against a mirror as it would apply at runtime."""
    for ops in batches:
        for op in ops:
            if op.kind == "remove_link":
                a, b = op.subject
                assert mirror.has_edge(a, b), f"removing absent link {a}-{b}"
                mirror.remove_edge(a, b)
            elif op.kind == "add_link":
                a, b, cost = op.subject
                assert not mirror.has_edge(a, b), f"adding duplicate link {a}-{b}"
                mirror.add_edge(a, b, cost)


class TestGeneratorsAreValidAndSeeded:
    @pytest.mark.parametrize("name", sorted(set(GENERATORS) - {"prefix_announce_withdraw"}))
    def test_link_ops_always_valid(self, name):
        net = topology.isp_hierarchy(2, 2, 2, seed=4)
        generator = GENERATORS[name]
        batches = list(generator(copy.deepcopy(net), random.Random(5), 6))
        replay_on_mirror(copy.deepcopy(net), batches)

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_same_seed_same_trace(self, name):
        net = topology.isp_hierarchy(2, 2, 2, seed=4)
        runs = [
            list(GENERATORS[name](copy.deepcopy(net), random.Random(9), 5))
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_different_seed_different_trace(self, name):
        net = topology.isp_hierarchy(3, 3, 3, seed=4)
        one = list(GENERATORS[name](copy.deepcopy(net), random.Random(1), 6))
        two = list(GENERATORS[name](copy.deepcopy(net), random.Random(2), 6))
        assert one != two


class TestLinkFlap:
    def test_slow_flaps_restore_topology_by_end(self):
        net = topology.ring(8)
        mirror = copy.deepcopy(net)
        list(link_flap(mirror, random.Random(3), 5, flaps_per_batch=2, fast_ratio=0.0))
        assert mirror.edges == net.edges

    def test_fast_flaps_are_down_and_up_in_one_batch(self):
        net = topology.ring(6)
        batches = list(
            link_flap(copy.deepcopy(net), random.Random(3), 4, flaps_per_batch=1, fast_ratio=1.0)
        )
        for ops in batches:
            assert [op.kind for op in ops] == ["remove_link", "add_link"]
            assert ops[0].subject == ops[1].subject[:2]


class TestNodeFailRecover:
    def test_fail_drops_every_incident_link_and_recovery_restores(self):
        net = topology.star(6)
        mirror = copy.deepcopy(net)
        batches = list(node_fail_recover(mirror, random.Random(2), 6))
        assert mirror.edges == net.edges  # flushed recoveries restore everything
        fail_batches = [ops for ops in batches if ops and ops[0].kind == "remove_link"]
        assert fail_batches
        for ops in fail_batches:
            failed = {op.subject[0] for op in ops} & {op.subject[1] for op in ops} or {
                op.subject[0] for op in ops
            }
            # All removed links share the failed node.
            node = sorted(failed)[0]
            assert all(node in op.subject[:2] for op in ops)

    def test_concurrent_failures_overlap(self):
        net = topology.isp_hierarchy(3, 3, 3, seed=1)
        mirror = copy.deepcopy(net)
        down = peak = 0
        for ops in node_fail_recover(mirror, random.Random(4), 12, concurrent_failures=3):
            if ops and ops[0].kind == "remove_link":
                down += 1
            elif ops:
                down -= 1
            peak = max(peak, down)
        # A recovery whose links were all deferred yields an empty batch the
        # op-kind proxy above cannot see, so peak may overshoot by the number
        # of such deferrals; the point is that failures genuinely overlap.
        assert peak >= 3, "three nodes must be down simultaneously"
        assert mirror.edges == net.edges

    def test_recovery_defers_links_into_still_down_neighbors(self):
        from repro.workloads.churn import _recover_node

        # n1 failed first (saving both its links), then n2 (no links left).
        mirror = topology.line(3)
        mirror.remove_edge("n0", "n1")
        mirror.remove_edge("n1", "n2")
        down = [("n1", [("n0", "n1", 1.0), ("n1", "n2", 1.0)]), ("n2", [])]
        first = _recover_node(mirror, down)
        # n1 comes back up towards n0 only; n1-n2 must not be restored while
        # n2 is still down — it is deferred onto n2's failure record.
        assert [op.subject for op in first] == [("n0", "n1", 1.0)]
        assert down == [("n2", [("n1", "n2", 1.0)])]
        second = _recover_node(mirror, down)
        assert [op.subject for op in second] == [("n1", "n2", 1.0)]
        assert mirror.edges == topology.line(3).edges

    def test_protected_nodes_never_fail(self):
        net = topology.star(5)
        protect = ("n0",)  # the hub: failing it would remove every link
        batches = list(
            node_fail_recover(copy.deepcopy(net), random.Random(7), 8, protect=protect)
        )
        for ops in batches:
            for op in ops:
                if op.kind == "remove_link":
                    # links are (hub, leaf); the failed node is the leaf side
                    assert op.subject[:2] != ("n0", "n0")
        # Every fail batch removes exactly one link (a leaf's only edge),
        # never the hub's full fan-out.
        removes = [ops for ops in batches if ops and ops[0].kind == "remove_link"]
        assert removes and all(len(ops) == 1 for ops in removes)


class TestPrefixAnnounceWithdraw:
    def collect(self, keep_alive, batches=8, seed=3):
        net = topology.ring(6)
        return list(
            prefix_announce_withdraw(
                copy.deepcopy(net),
                random.Random(seed),
                batches,
                prefixes=2,
                origins_per_prefix=2,
                keep_alive=keep_alive,
            )
        )

    def test_first_batch_announces_every_homing(self):
        batches = self.collect(keep_alive=True)
        first = batches[0]
        assert len(first) == 4  # 2 prefixes x 2 origins
        assert all(op.kind == "insert" and op.subject[0] == "prefix" for op in first)

    def test_keep_alive_never_withdraws_last_origin(self):
        batches = self.collect(keep_alive=True, batches=20)
        live = {}
        for ops in batches:
            for op in ops:
                _relation, origin, prefix, _cost = op.subject
                if op.kind == "insert":
                    live[(prefix, origin)] = True
                else:
                    live[(prefix, origin)] = False
                prefix_live = sum(1 for (p, _o), up in live.items() if p == prefix and up)
                assert prefix_live >= 1, f"prefix {prefix} lost its last origin"

    def test_withdraw_only_what_is_announced(self):
        batches = self.collect(keep_alive=False, batches=20)
        live = set()
        for ops in batches:
            for op in ops:
                key = op.subject[1:3]
                if op.kind == "insert":
                    assert key not in live
                    live.add(key)
                else:
                    assert key in live
                    live.remove(key)

    def test_too_many_origins_rejected(self):
        net = topology.ring(3)
        with pytest.raises(EngineError, match="origins_per_prefix"):
            list(
                prefix_announce_withdraw(
                    net, random.Random(0), 2, prefixes=1, origins_per_prefix=5
                )
            )


class TestHotHubSkew:
    def test_churn_concentrates_on_the_hub(self):
        net = topology.star(10)  # n0 is by far the highest-degree node
        batches = list(
            hot_hub_skew(copy.deepcopy(net), random.Random(5), 10, ops_per_batch=4)
        )
        touches = {}
        for ops in batches:
            for op in ops:
                if op.kind == "remove_link":
                    for node in op.subject[:2]:
                        touches[node] = touches.get(node, 0) + 1
        assert max(touches, key=lambda node: touches[node]) == "n0"


class TestRandomLinkChurn:
    def test_flap_is_remove_then_add_in_one_batch(self):
        net = topology.ring(6)
        flaps = [
            ops
            for ops in random_link_churn(copy.deepcopy(net), random.Random(3), 30)
            if len(ops) == 2
        ]
        assert flaps
        for remove, add in flaps:
            assert (remove.kind, add.kind) == ("remove_link", "add_link")
            assert remove.subject == add.subject[:2]

    def test_one_op_per_batch_except_flaps(self):
        net = topology.star(6)
        for ops in random_link_churn(copy.deepcopy(net), random.Random(11), 20):
            assert len(ops) in (1, 2)


class TestTraceAssembly:
    def test_scenario_trace_is_deterministic(self):
        spec = demo(seed=21)
        assert trace_digest(scenario_trace(spec)) == trace_digest(scenario_trace(spec))

    def test_different_seeds_change_the_digest(self):
        assert trace_digest(scenario_trace(smoke(seed=1))) != trace_digest(
            scenario_trace(smoke(seed=2))
        )

    def test_phases_share_one_evolving_mirror(self):
        """A later phase only sees links as the earlier phase left them."""
        spec = smoke(seed=13)
        trace = scenario_trace(spec)
        mirror = spec.topology.build()
        # Replaying the whole trace keeps every link op valid — which can
        # only hold if generation threaded one mirror through all phases.
        replay_on_mirror(mirror, [batch.ops for batch in trace])

    def test_repeated_phases_get_independent_streams_and_buckets(self):
        from repro.workloads import ChurnPhase, ScenarioSpec, TopologySpec

        spec = ScenarioSpec(
            name="twice",
            topology=TopologySpec.make("ring", count=8),
            protocol="mincost",
            seed=5,
            churn=(
                ChurnPhase.make("link_flap", batches=3, flaps_per_batch=2),
                ChurnPhase.make("link_flap", batches=3, flaps_per_batch=2),
            ),
        )
        trace = scenario_trace(spec)
        by_phase = {}
        for batch in trace:
            by_phase.setdefault(batch.phase, []).append(batch.ops)
        assert set(by_phase) == {"link_flap", "link_flap#2"}
        assert by_phase["link_flap"] != by_phase["link_flap#2"], (
            "identical phases must not replay byte-identical churn"
        )

    def test_unknown_generator_rejected(self):
        from repro.workloads import ChurnPhase, ScenarioSpec, TopologySpec

        spec = ScenarioSpec(
            name="bad",
            topology=TopologySpec.make("ring", count=4),
            protocol="mincost",
            churn=(ChurnPhase.make("meteor_strike", batches=1),),
        )
        with pytest.raises(EngineError, match="unknown churn generator"):
            scenario_trace(spec)

    def test_op_delta_accounting(self):
        assert ChurnOp.add_link("a", "b", 1.0).base_deltas() == 2
        assert ChurnOp.add_link("a", "b", 1.0).base_deltas(symmetric_links=False) == 1
        assert ChurnOp.insert("prefix", "a", "p0", 0.0).base_deltas() == 1
