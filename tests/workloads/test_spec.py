"""Tests for scenario specifications (construction, validation, sweeping)."""

import json

import pytest

from repro.errors import EngineError
from repro.workloads import (
    ChurnPhase,
    QueryMixSpec,
    RuntimeKnobs,
    ScenarioSpec,
    TopologySpec,
)


class TestTopologySpec:
    def test_build_runs_the_named_generator(self):
        spec = TopologySpec.make("star", count=5)
        net = spec.build()
        assert net.node_count() == 5
        assert net.degree("n0") == 4

    def test_unknown_kind_rejected(self):
        with pytest.raises(EngineError, match="unknown topology kind"):
            TopologySpec.make("torus", count=5)

    def test_params_are_frozen_and_hashable(self):
        spec = TopologySpec.make("ring", count=6, cost=2.0)
        assert hash(spec) == hash(TopologySpec.make("ring", cost=2.0, count=6))

    def test_seeded_generators_build_identically(self):
        spec = TopologySpec.make("power_law", count=40, attach=2, seed=9)
        assert spec.build().edges == spec.build().edges


class TestScenarioSpec:
    def make_spec(self, **overrides):
        fields = dict(
            name="t",
            topology=TopologySpec.make("ring", count=4),
            protocol="mincost",
            seed=3,
            churn=(ChurnPhase.make("link_flap", batches=2),),
        )
        fields.update(overrides)
        return ScenarioSpec(**fields)

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(EngineError, match="batch_size"):
            self.make_spec(batch_size=0)

    def test_invalid_query_mix_rejected(self):
        with pytest.raises(EngineError, match="wave_every"):
            QueryMixSpec(relation="minCost", wave_every=0)
        with pytest.raises(EngineError, match="queries_per_wave"):
            QueryMixSpec(relation="minCost", queries_per_wave=0)

    def test_with_helpers_replace_without_mutating(self):
        spec = self.make_spec()
        swept = spec.with_batch_size(8).with_knobs(backend="thread").with_seed(5)
        assert (swept.batch_size, swept.knobs.backend, swept.seed) == (8, "thread", 5)
        assert (spec.batch_size, spec.knobs.backend, spec.seed) == (None, None, 3)

    def test_to_dict_is_json_serialisable(self):
        spec = self.make_spec(queries=QueryMixSpec(relation="minCost"))
        document = json.loads(json.dumps(spec.to_dict()))
        assert document["protocol"] == "mincost"
        assert document["queries"]["relation"] == "minCost"

    def test_knobs_runtime_kwargs_round_trip(self):
        knobs = RuntimeKnobs(backend="thread", num_shards=4, shard_workers=2)
        kwargs = knobs.runtime_kwargs()
        assert kwargs["backend"] == "thread"
        assert kwargs["num_shards"] == 4
        assert kwargs["batch_deltas"] is True

    def test_equal_specs_compare_equal(self):
        assert self.make_spec() == self.make_spec()
        assert self.make_spec() != self.make_spec(seed=4)
