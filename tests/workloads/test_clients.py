"""Tests for the concurrent-client harness (workloads.clients)."""

from __future__ import annotations

import pytest

from repro.durability import ServiceRuntime
from repro.engine import topology
from repro.errors import EngineError
from repro.workloads import ClientMix, run_concurrent_clients
from repro.workloads.churn import ChurnBatch, ChurnOp


@pytest.fixture
def service():
    svc = ServiceRuntime("mincost", topology.ring(5))
    svc.seed_links()
    yield svc
    svc.close()


class TestClientMix:
    def test_defaults_valid(self):
        mix = ClientMix()
        assert mix.clients == 4 and mix.relation == "minCost"

    @pytest.mark.parametrize("bad", [
        {"clients": 0},
        {"queries_per_client": 0},
    ])
    def test_invalid_mix_rejected(self, bad):
        with pytest.raises(EngineError):
            ClientMix(**bad)


class TestRunConcurrentClients:
    def test_all_queries_issued_and_latencies_recorded(self, service):
        mix = ClientMix(clients=3, queries_per_client=5)
        report = run_concurrent_clients(service, mix, seed=7)
        assert report.issued == 15
        assert report.errors == 0
        assert len(report.latencies) == 15
        assert report.commits == 0
        summary = report.summary()
        assert summary["count"] == 15.0
        assert 0.0 < summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["max"]

    def test_churn_commits_interleave_with_queries(self, service):
        mix = ClientMix(clients=2, queries_per_client=10)
        batches = [
            ChurnBatch(index=0, phase="flap", ops=(ChurnOp.remove_link("n0", "n1"),)),
            ChurnBatch(index=1, phase="flap", ops=(ChurnOp.add_link("n0", "n1", 1.0),)),
        ]
        report = run_concurrent_clients(service, mix, seed=1, churn_batches=batches)
        assert report.commits == 2
        assert report.issued == 20
        # Churned rows may 404 mid-run; that is an error count, not a crash.
        assert report.errors <= report.issued

    def test_plain_op_sequences_accepted_as_batches(self, service):
        report = run_concurrent_clients(
            service,
            ClientMix(clients=1, queries_per_client=2),
            churn_batches=[[ChurnOp.remove_link("n2", "n3")]],
        )
        assert report.commits == 1

    def test_empty_relation_rejected(self):
        with ServiceRuntime("mincost", topology.ring(3)) as svc:
            with pytest.raises(EngineError, match="empty"):
                run_concurrent_clients(svc)

    def test_mode_mix_exercises_multiple_query_modes(self, service):
        mix = ClientMix(
            clients=2,
            queries_per_client=6,
            modes=(("lineage", 0.5), ("participants", 0.5)),
        )
        report = run_concurrent_clients(service, mix, seed=3)
        assert report.issued == 12 and report.errors == 0
