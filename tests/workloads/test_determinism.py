"""The workload determinism contract, pinned.

Same seed ⇒ bit-identical churn trace, bit-identical generated topology and
bit-identical smoke-profile MetricsReport deterministic view — across
repeated runs and across every execution backend.  This is what makes a
scenario name + seed a complete bug report: any counter divergence
reproduces from the spec alone.
"""

import pytest

from repro.engine import topology
from repro.workloads import ScenarioDriver, scenario_trace, trace_digest
from repro.workloads.profiles import demo, scale, smoke

BACKENDS = ("serial", "thread", "asyncio")


class TestTraceDeterminism:
    @pytest.mark.parametrize("profile", [smoke, demo, scale], ids=lambda p: p.__name__)
    def test_same_seed_bit_identical_trace(self, profile):
        spec = profile(seed=17)
        first = scenario_trace(spec)
        second = scenario_trace(spec)
        assert first == second
        assert trace_digest(first) == trace_digest(second)

    def test_seed_changes_the_trace(self):
        assert scenario_trace(smoke(seed=1)) != scenario_trace(smoke(seed=2))


class TestTopologyDeterminism:
    def test_power_law_identical_across_runs(self):
        one = topology.power_law(200, attach=2, seed=23)
        two = topology.power_law(200, attach=2, seed=23)
        assert one.nodes == two.nodes
        assert one.edges == two.edges
        assert one != topology.power_law(200, attach=2, seed=24)

    def test_isp_hierarchy_identical_across_runs(self):
        one = topology.isp_hierarchy(4, 3, 2, seed=23)
        two = topology.isp_hierarchy(4, 3, 2, seed=23)
        assert (one.nodes, one.edges) == (two.nodes, two.edges)


class TestReportDeterminism:
    def run_view(self, backend):
        spec = smoke(seed=29).with_knobs(
            backend=backend, backend_workers=None if backend == "serial" else 2
        )
        with ScenarioDriver(spec) as driver:
            return driver.run().deterministic_view()

    def test_smoke_report_identical_across_runs(self):
        assert self.run_view("serial") == self.run_view("serial")

    @pytest.mark.parametrize("backend", BACKENDS[1:])
    def test_smoke_report_identical_across_backends(self, backend):
        serial = self.run_view("serial")
        concurrent = self.run_view(backend)
        assert concurrent == serial, (
            f"{backend} backend diverged from the serial reference"
        )

    def test_view_excludes_wall_clock_but_dict_keeps_it(self):
        spec = smoke(seed=29)
        with ScenarioDriver(spec) as driver:
            report = driver.run()
        view = report.deterministic_view()
        assert "seconds" not in view
        assert "backend" not in view
        assert "seconds" in report.to_dict()
