"""Unit tests for ServiceRuntime: serve, commit, checkpoint, crash, recover."""

from __future__ import annotations

import pytest

from repro.durability import ServiceRuntime, latency_summary, scan, wal_path
from repro.durability.wal import RECORD_CHECKPOINT
from repro.engine import topology
from repro.errors import DurabilityError, EngineError
from repro.protocols import mincost
from repro.workloads.churn import ChurnOp


def make_service(tmp_path=None, **kwargs):
    kwargs.setdefault("wal_fsync", False)
    service = ServiceRuntime(
        "mincost", topology.ring(5),
        durable_dir=tmp_path, **kwargs,
    )
    service.seed_links()
    return service


class TestServing:
    def test_protocol_name_resolves_to_source(self):
        with make_service() as service:
            reference = mincost.program()
            assert len(service.runtime.program.rules) == len(reference.rules)
            assert not service.durable
            assert service.state("minCost")  # the resolved protocol converges

    def test_unknown_program_rejected(self):
        with pytest.raises(EngineError, match="neither NDlog source"):
            ServiceRuntime("nonsense", topology.ring(3))

    def test_commit_and_query(self, tmp_path):
        with make_service(tmp_path) as service:
            receipt = service.commit([ChurnOp.remove_link("n0", "n1")])
            assert receipt["ops"] == 1 and receipt["batch"] == 2
            assert receipt["events"] > 0
            rows = service.state("minCost")
            result = service.query("minCost", list(rows[0]), mode="lineage")
            assert result.value  # lineage of a derivable row is non-empty
            metrics = service.latency_metrics()
            assert metrics["query_count"] == 1.0
            assert metrics["commit_count"] == 2.0  # seed + one commit
            assert set(metrics) >= {"query_p50", "query_p95", "query_p99"}

    def test_closed_service_refuses_everything(self):
        service = make_service()
        service.close()
        service.close()  # idempotent
        with pytest.raises(DurabilityError, match="closed"):
            service.commit([])
        with pytest.raises(DurabilityError, match="closed"):
            service.query("minCost", ["n0", "n1", 1.0])


class TestCheckpointing:
    def test_checkpoint_every_compacts_automatically(self, tmp_path):
        with make_service(tmp_path, checkpoint_every=2) as service:
            for _ in range(3):
                service.commit([ChurnOp.add_link("n0", "n2", 9.0)])
                service.commit([ChurnOp.remove_link("n0", "n2")])
            # seed + 6 commits = 7 batches; auto-checkpoints at 2, 4, 6.
            assert service.checkpoints_taken == 3
            records = scan(wal_path(tmp_path)).records
            assert sum(r.type == RECORD_CHECKPOINT for r in records) == 3

    def test_checkpoint_every_disabled_by_default(self, tmp_path):
        with make_service(tmp_path) as service:
            service.commit([ChurnOp.remove_link("n0", "n1")])
            assert service.checkpoints_taken == 0

    def test_negative_checkpoint_every_rejected(self, tmp_path):
        with pytest.raises(EngineError, match="checkpoint_every"):
            ServiceRuntime("mincost", topology.ring(3),
                           durable_dir=tmp_path, checkpoint_every=-1)


class TestCrashRecover:
    def test_crash_then_recover_serves_identical_answers(self, tmp_path):
        service = make_service(tmp_path)
        service.commit([ChurnOp.remove_link("n0", "n1")])
        rows = service.state("minCost")
        before = {
            tuple(row): sorted(str(ref) for ref in
                               service.query("minCost", list(row)).value)
            for row in rows[:3]
        }
        service.crash()

        recovered = ServiceRuntime.recover(tmp_path, wal_fsync=False)
        try:
            assert recovered.last_recovery is not None
            assert recovered.last_recovery.batches_replayed == 2
            assert recovered.state("minCost") == rows
            for row, lineage in before.items():
                answer = recovered.query("minCost", list(row)).value
                assert sorted(str(ref) for ref in answer) == lineage
        finally:
            recovered.close()

    def test_crash_discards_uncommitted_mutations(self, tmp_path):
        service = make_service(tmp_path)
        rows = service.state("minCost")
        # Mutate below the commit API, then crash before the window commits.
        service.runtime.remove_link("n0", "n1")
        service.crash()
        recovered = ServiceRuntime.recover(tmp_path, wal_fsync=False)
        try:
            assert recovered.state("minCost") == rows
            assert recovered.committed_batches == 1  # just the seed window
        finally:
            recovered.close()

    def test_recovered_service_keeps_committing(self, tmp_path):
        service = make_service(tmp_path)
        service.crash()
        recovered = ServiceRuntime.recover(tmp_path, wal_fsync=False)
        try:
            receipt = recovered.commit([ChurnOp.remove_link("n0", "n1")])
            assert receipt["batch"] == 2
            recovered.checkpoint()
        finally:
            recovered.close()


class TestLatencySummary:
    def test_empty_samples(self):
        assert latency_summary([]) == {"count": 0.0}

    def test_percentiles_nearest_rank(self):
        samples = [float(value) for value in range(1, 101)]
        summary = latency_summary(samples)
        assert summary["count"] == 100.0
        assert summary["p50"] == 50.0
        assert summary["p95"] == 95.0
        assert summary["p99"] == 99.0
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)

    def test_single_sample(self):
        summary = latency_summary([0.25])
        assert summary["p50"] == summary["p99"] == summary["max"] == 0.25
