"""Unit tests for the write-ahead log: format, verification, torn-tail rule."""

from __future__ import annotations

import pytest

from repro.durability.wal import (
    MAGIC,
    RECORD_BATCH,
    RECORD_INIT,
    WriteAheadLog,
    repair,
    scan,
    wal_path,
)
from repro.errors import DurabilityError


def make_wal(tmp_path, records=3, fsync=False):
    wal = WriteAheadLog(tmp_path, fsync=fsync)
    wal.append(RECORD_INIT, {"source": "r1 a(@X) :- b(@X).", "knobs": {}})
    for index in range(records):
        wal.append(RECORD_BATCH, {"batch": index + 1, "ops": [["insert", "b", [f"n{index}"]]]})
    wal.close()
    return wal_path(tmp_path)


class TestAppendScanRoundTrip:
    def test_records_round_trip(self, tmp_path):
        path = make_wal(tmp_path, records=3)
        result = scan(path)
        assert not result.torn
        assert result.valid_bytes == result.total_bytes
        assert [r.type for r in result.records] == [RECORD_INIT] + [RECORD_BATCH] * 3
        assert [r.seq for r in result.records] == [1, 2, 3, 4]
        assert result.records[2].data == {"batch": 2, "ops": [["insert", "b", ["n1"]]]}

    def test_reopen_continues_sequence(self, tmp_path):
        make_wal(tmp_path, records=2)
        wal = WriteAheadLog(tmp_path, fsync=False)
        assert wal.next_seq == 4
        record = wal.append(RECORD_BATCH, {"batch": 3, "ops": []})
        wal.close()
        assert record.seq == 4
        assert len(scan(wal_path(tmp_path)).records) == 4

    def test_empty_file_scans_clean(self, tmp_path):
        path = wal_path(tmp_path)
        path.write_bytes(b"")
        result = scan(path)
        assert result.records == [] and not result.torn

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DurabilityError, match="cannot read WAL"):
            scan(wal_path(tmp_path))

    def test_foreign_file_raises(self, tmp_path):
        path = wal_path(tmp_path)
        path.write_bytes(b"definitely not a WAL")
        with pytest.raises(DurabilityError, match="magic header"):
            scan(path)

    def test_closed_append_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        wal.close()
        with pytest.raises(DurabilityError, match="closed"):
            wal.append(RECORD_BATCH, {"batch": 1, "ops": []})

    def test_unknown_record_type_raises(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            with pytest.raises(DurabilityError, match="unknown WAL record type"):
                wal.append("bogus", {})

    def test_unserialisable_data_raises(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            with pytest.raises(DurabilityError, match="JSON-serialisable"):
                wal.append(RECORD_BATCH, {"bad": object()})


class TestTornTailRule:
    @pytest.mark.parametrize("cut", [1, 2, 20, 35], ids=lambda c: f"cut{c}")
    def test_truncated_tail_detected_and_repaired(self, tmp_path, cut):
        """Cutting anywhere inside the final record (length prefix, payload
        or digest) loses exactly that record and nothing before it."""
        path = make_wal(tmp_path, records=3)
        clean = scan(path)
        last = clean.records[-1]
        raw = path.read_bytes()
        path.write_bytes(raw[: last.offset + cut])

        result = scan(path)
        assert result.torn and result.reason
        assert [r.seq for r in result.records] == [1, 2, 3]

        repair(path)
        repaired = scan(path)
        assert not repaired.torn
        assert len(repaired.records) == 3
        assert repaired.valid_bytes == repaired.total_bytes == last.offset

    def test_flipped_payload_byte_is_a_hash_mismatch(self, tmp_path):
        path = make_wal(tmp_path, records=2)
        clean = scan(path)
        last = clean.records[-1]
        raw = bytearray(path.read_bytes())
        raw[last.offset + 10] ^= 0xFF
        path.write_bytes(bytes(raw))
        result = scan(path)
        assert result.torn and result.reason == "content hash mismatch"
        assert len(result.records) == len(clean.records) - 1

    def test_garbage_appended_after_clean_records(self, tmp_path):
        path = make_wal(tmp_path, records=2)
        clean_bytes = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef" * 10)
        result = repair(path)
        assert result.torn
        assert result.valid_bytes == clean_bytes
        assert path.stat().st_size == clean_bytes
        assert not scan(path).torn

    def test_append_over_torn_tail_refused(self, tmp_path):
        path = make_wal(tmp_path, records=2)
        with open(path, "ab") as handle:
            handle.write(b"torn")
        with pytest.raises(DurabilityError, match="torn tail"):
            WriteAheadLog(tmp_path, fsync=False)
        repair(path)
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            assert wal.next_seq == 4

    def test_repair_is_noop_on_clean_file(self, tmp_path):
        path = make_wal(tmp_path, records=1)
        before = path.read_bytes()
        result = repair(path)
        assert not result.torn
        assert path.read_bytes() == before


class TestFsyncBarrier:
    def test_fsync_mode_records_survive_scan(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=True)
        wal.append(RECORD_INIT, {"source": "x", "knobs": {}})
        wal.append(RECORD_BATCH, {"batch": 1, "ops": []})
        # No close: the barrier means the bytes are already on disk.
        result = scan(wal_path(tmp_path))
        assert len(result.records) == 2 and not result.torn
        wal.close()

    def test_magic_header_written_first(self, tmp_path):
        WriteAheadLog(tmp_path, fsync=False).close()
        assert wal_path(tmp_path).read_bytes() == MAGIC
