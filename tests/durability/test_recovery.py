"""Unit tests for durable runtimes and the RecoveryManager.

The exhaustive crash-injection matrix lives in
``tests/property/test_property_recovery.py``; this module pins the API
contracts — durable-mode guards, checkpoint compaction, tail-resume after
recovery, and the failure modes that must raise instead of corrupting.
"""

from __future__ import annotations

import pytest

from repro.durability import (
    RecoveryManager,
    base_facts,
    build_topology,
    scan,
    topology_doc,
    wal_path,
)
from repro.durability.wal import RECORD_BATCH, RECORD_CHECKPOINT, RECORD_INIT
from repro.engine import topology
from repro.engine.runtime import NetTrailsRuntime
from repro.errors import DurabilityError, EngineError
from repro.protocols import mincost


def durable_runtime(tmp_path, net=None, **kwargs):
    kwargs.setdefault("wal_fsync", False)
    runtime = NetTrailsRuntime(
        mincost.SOURCE, net if net is not None else topology.ring(5),
        durable_dir=tmp_path, **kwargs,
    )
    runtime.seed_links(run=True)
    return runtime


class TestDurableMode:
    def test_init_record_written_on_construction(self, tmp_path):
        runtime = durable_runtime(tmp_path)
        records = scan(wal_path(tmp_path)).records
        assert records[0].type == RECORD_INIT
        assert records[0].data["source"] == mincost.SOURCE
        assert records[0].data["knobs"]["batch_deltas"] is True
        assert records[1].type == RECORD_BATCH
        assert records[1].data["ops"] == [["seed_links", "link", True, True]]
        runtime.close()

    def test_one_batch_record_per_quiescence_window(self, tmp_path):
        runtime = durable_runtime(tmp_path)
        runtime.insert("link", ["n0", "n2", 7.0])
        runtime.insert("link", ["n2", "n0", 7.0])
        runtime.run_to_quiescence()
        runtime.run_to_quiescence()  # no pending ops -> no empty record
        records = scan(wal_path(tmp_path)).records
        batches = [r for r in records if r.type == RECORD_BATCH]
        assert len(batches) == 2
        assert batches[-1].data["ops"] == [
            ["insert", "link", ["n0", "n2", 7.0]],
            ["insert", "link", ["n2", "n0", 7.0]],
        ]
        runtime.close()

    def test_run_with_pending_ops_rejected(self, tmp_path):
        runtime = durable_runtime(tmp_path)
        runtime.remove_link("n0", "n1")
        with pytest.raises(EngineError, match="quiescence windows"):
            runtime.run(0.5)
        runtime.run_to_quiescence()
        runtime.run(0.5)  # fine once committed
        runtime.close()

    def test_durable_dir_with_history_rejected(self, tmp_path):
        durable_runtime(tmp_path).close()
        with pytest.raises(EngineError, match="already holds a WAL"):
            NetTrailsRuntime(mincost.SOURCE, topology.ring(5), durable_dir=tmp_path)

    def test_parsed_program_rejected_in_durable_mode(self, tmp_path):
        with pytest.raises(EngineError, match="source text"):
            NetTrailsRuntime(mincost.program(), topology.ring(5), durable_dir=tmp_path)

    def test_non_durable_runtime_has_no_wal_side_effects(self, tmp_path):
        runtime = NetTrailsRuntime(mincost.SOURCE, topology.ring(5))
        runtime.seed_links(run=True)
        assert runtime.durable_dir is None
        assert not wal_path(tmp_path).exists()
        with pytest.raises(EngineError, match="durable runtime"):
            runtime.checkpoint()
        runtime.close()


class TestCheckpointCompaction:
    def test_checkpoint_writes_snapshot_file_and_record(self, tmp_path):
        runtime = durable_runtime(tmp_path)
        path = runtime.checkpoint(label="after-seed")
        assert path.exists() and path.parent == tmp_path / "snapshots"
        record = scan(wal_path(tmp_path)).records[-1]
        assert record.type == RECORD_CHECKPOINT
        assert record.data["label"] == "after-seed"
        assert record.data["base"]["link"] == sorted(
            base_facts(runtime)["link"], key=repr
        )
        assert record.data["link"] == {
            "relation": "link", "include_cost": True, "symmetric": True,
        }
        runtime.close()

    def test_checkpoint_requires_quiescence(self, tmp_path):
        runtime = durable_runtime(tmp_path)
        runtime.remove_link("n0", "n1")
        with pytest.raises(EngineError, match="uncommitted"):
            runtime.checkpoint()
        runtime.close()

    def test_checkpoint_files_pruned(self, tmp_path):
        runtime = durable_runtime(tmp_path)
        for step in range(5):
            runtime.insert("link", ["n0", "n2", 9.0 + step])
            runtime.run_to_quiescence()
            runtime.checkpoint(keep=2)
        files = sorted((tmp_path / "snapshots").glob("ckpt-*.json"))
        assert len(files) == 2
        runtime.close()


class TestRecoveryManager:
    def test_recovered_runtime_resumes_appending(self, tmp_path):
        runtime = durable_runtime(tmp_path)
        runtime.remove_link("n0", "n1")
        runtime.run_to_quiescence()
        expected_next = runtime._committed_batches + 1
        runtime.close()

        result = RecoveryManager(tmp_path).recover(mode="genesis", wal_fsync=False)
        recovered = result.runtime
        assert recovered.durable_dir == str(tmp_path)
        recovered.add_link("n0", "n1", 1.0)
        recovered.run_to_quiescence()
        tail = scan(wal_path(tmp_path)).records[-1]
        assert tail.type == RECORD_BATCH
        assert tail.data["batch"] == expected_next
        assert tail.data["ops"] == [["add_link", "n0", "n1", 1.0]]
        recovered.close()

        # And the twice-recovered history still replays cleanly.
        second = RecoveryManager(tmp_path).recover(mode="genesis", attach=False)
        assert second.batches_replayed == expected_next
        second.runtime.close()

    def test_checkpoint_mode_replays_only_the_tail(
        self, tmp_path, store_snapshots, provenance_fingerprint
    ):
        runtime = durable_runtime(tmp_path)
        runtime.checkpoint()
        runtime.remove_link("n0", "n1")
        runtime.run_to_quiescence()
        expected = store_snapshots(runtime)
        fingerprint = provenance_fingerprint(runtime)
        runtime.close()

        result = RecoveryManager(tmp_path).recover(mode="checkpoint", attach=False)
        assert result.mode == "checkpoint"
        assert result.checkpoint_batch == 1
        assert result.batches_replayed == 1  # only the post-checkpoint window
        assert result.checkpoints_verified == 1
        assert store_snapshots(result.runtime) == expected
        assert provenance_fingerprint(result.runtime) == fingerprint
        result.runtime.close()

    def test_checkpoint_mode_without_checkpoint_falls_back_to_genesis(self, tmp_path):
        durable_runtime(tmp_path).close()
        result = RecoveryManager(tmp_path).recover(mode="checkpoint", attach=False)
        assert result.mode == "genesis"
        result.runtime.close()

    def test_recovery_metrics_payload(self, tmp_path):
        durable_runtime(tmp_path).close()
        result = RecoveryManager(tmp_path).recover(mode="genesis", attach=False)
        metrics = result.recovery_metrics()
        assert metrics["genesis_batches_replayed"] == 1.0
        assert metrics["genesis_truncated_bytes"] == 0.0
        assert metrics["genesis_seconds"] >= 0.0
        assert result.seconds > 0.0
        result.runtime.close()

    def test_unknown_mode_rejected(self, tmp_path):
        durable_runtime(tmp_path).close()
        with pytest.raises(DurabilityError, match="unknown recovery mode"):
            RecoveryManager(tmp_path).recover(mode="bogus")

    def test_missing_wal_rejected(self, tmp_path):
        with pytest.raises(DurabilityError, match="nothing to recover"):
            RecoveryManager(tmp_path)

    def test_wal_with_no_records_rejected(self, tmp_path):
        from repro.durability.wal import WriteAheadLog

        WriteAheadLog(tmp_path, fsync=False).close()
        with pytest.raises(DurabilityError, match="no intact records"):
            RecoveryManager(tmp_path).recover()

    def test_tampered_checkpoint_digest_fails_verification(self, tmp_path):
        runtime = durable_runtime(tmp_path)
        runtime.checkpoint()
        runtime.close()
        # Rewrite the WAL with a forged state digest (re-hashed, so the
        # record itself verifies — only the *semantic* check can catch it).
        from repro.durability.wal import WriteAheadLog, repair

        records = scan(wal_path(tmp_path)).records
        wal_path(tmp_path).unlink()
        wal = WriteAheadLog(tmp_path, fsync=False)
        for record in records:
            data = dict(record.data)
            if record.type == RECORD_CHECKPOINT:
                data["state_digest"] = "0" * 64
            wal.append(record.type, data)
        wal.close()
        repair(wal_path(tmp_path))
        with pytest.raises(DurabilityError, match="state digest"):
            RecoveryManager(tmp_path).recover(mode="checkpoint", attach=False)
        with pytest.raises(DurabilityError, match="state digest"):
            RecoveryManager(tmp_path).recover(mode="genesis", attach=False)


class TestTopologyDoc:
    def test_topology_round_trips(self):
        net = topology.isp_hierarchy(2, 2, 1, seed=5)
        rebuilt = build_topology(topology_doc(net))
        assert sorted(rebuilt.nodes) == sorted(net.nodes)
        assert rebuilt.edges == net.edges
        assert rebuilt.name == net.name
