"""E16 — interval-indexed provenance queries vs reference traversal.

The distributed traversal engine answers a lineage query by recursively
shipping one request per remote child, so a deep derivation over a large
AS hierarchy costs messages proportional to the number of remote rule
firings it touches.  The interval index (``repro.core.interval_index``)
collapses each partition's share of that walk into a handful of label-table
range scans: a query wave ships *one* request per partition per round,
carrying every target interval the wave needs from that partition, and the
partition answers with the local closure plus its remote frontier.

This experiment pins the headline claim: on deep ``minCost`` lineage over
the 1010-node ``isp_hierarchy`` scale topology (the same graph E15
saturates), a batched interval query wave needs **at least 10x fewer
messages** than the per-query reference traversal — while returning
bit-identical lineage and participant sets, which the differential-oracle
property suite (``tests/property/test_property_interval.py``) re-proves
under churn.

A compact variant of the same measurement feeds the CI perf gate
(``emit_bench_json.py``), which additionally enforces the invariant that
interval messages never exceed traversal messages.
"""

from repro.core.optimizations import QueryOptions
from repro.core.queries import QUERY_LINEAGE, QUERY_PARTICIPANTS
from repro.core.query import DistributedQueryEngine
from repro.engine import topology
from repro.engine.runtime import NetTrailsRuntime
from repro.protocols import mincost

#: The scale topology: same 1010-node AS hierarchy as the E15 profile.
SCALE_DIMS = (10, 10, 9)
#: Compact topology (39 nodes) for the CI perf gate's fast trajectory run.
COMPACT_DIMS = (3, 3, 3)
TOPOLOGY_SEED = 11

#: Path-cost bound for the minCost program: costs up to 3 hops reach from a
#: stub AS through its tier-2 and tier-1 providers — the deepest lineage the
#: hierarchy offers — while keeping the 1010-node fixpoint tractable.
MAX_COST = 4.0

#: How many deep-lineage roots one query wave carries.
N_ROOTS = 24


def run_deep_lineage(
    dims=SCALE_DIMS,
    seed=TOPOLOGY_SEED,
    max_cost=MAX_COST,
    n_roots=N_ROOTS,
):
    """Measure traversal-vs-interval message costs on one seeded fixpoint.

    Picks the ``n_roots`` highest-cost ``minCost`` rows homed at stub ASes
    (the deepest derivations), answers lineage + participants for each via
    the reference traversal engine (summing per-query message costs), then
    re-answers the same roots through the interval engine's batched wave
    protocol and diffs the answers.  Returns a flat metrics dict.

    The two engines are constructed strictly in sequence — never
    interleaved — because a runtime's per-node query handlers are rebound
    by whichever engine was constructed last.
    """
    net = topology.isp_hierarchy(*dims, seed=seed)
    runtime = NetTrailsRuntime(mincost.program(max_cost=max_cost), net)
    try:
        runtime.seed_links(run=True)
        rows = runtime.state("minCost")
        stub_rows = sorted(
            (row for row in rows if str(row[0]).startswith("stub_")),
            key=lambda row: (-row[2], repr(row)),
        )
        roots = [list(row) for row in stub_rows[:n_roots]]
        options = QueryOptions.baseline()

        # Reference traversal first: per-query message costs, recorded answers.
        traversal = DistributedQueryEngine(runtime, use_interval_index=False)
        traversal_messages = 0
        expected = {}
        for mode in (QUERY_LINEAGE, QUERY_PARTICIPANTS):
            for index, root in enumerate(roots):
                result = traversal.query("minCost", root, mode=mode, options=options)
                traversal_messages += result.stats.messages
                expected[(mode, index)] = result.value

        # Interval second (constructing the engine rebinds the handlers):
        # one batched wave per mode over the same roots.
        interval = DistributedQueryEngine(runtime, use_interval_index=True)
        before = runtime.message_stats().messages
        identical = True
        for mode in (QUERY_LINEAGE, QUERY_PARTICIPANTS):
            results = interval.query_batch("minCost", roots, mode=mode, options=options)
            for index, result in enumerate(results):
                if result.value != expected[(mode, index)]:
                    identical = False
        interval_messages = runtime.message_stats().messages - before

        return {
            "nodes": net.node_count(),
            "roots": len(roots),
            "queries": 2 * len(roots),
            "traversal_messages": traversal_messages,
            "interval_messages": interval_messages,
            "ratio": traversal_messages / max(1, interval_messages),
            "identical": identical,
            "interval_totals": dict(interval.interval_totals()),
        }
    finally:
        runtime.close()


def test_interval_wave_beats_traversal_10x_at_scale(benchmark, record):
    """The acceptance claim: >=10x fewer messages on deep lineage at 1010 nodes."""
    outcome = benchmark.pedantic(run_deep_lineage, rounds=1, iterations=1)
    assert outcome["nodes"] >= 1000, outcome["nodes"]
    assert outcome["identical"], "interval answers diverged from traversal"
    assert outcome["ratio"] >= 10.0, (
        f"interval wave no longer saves >=10x messages: "
        f"{outcome['traversal_messages']} traversal vs "
        f"{outcome['interval_messages']} interval "
        f"({outcome['ratio']:.1f}x)"
    )
    totals = outcome["interval_totals"]
    assert totals["builds"] > 0, "interval path never built an index"
    assert totals["range_scans"] > 0, "interval path never scanned a label table"
    record(
        "E16 interval-indexed queries (minCost, 1010-node ISP hierarchy)",
        f"{outcome['queries']} deep-lineage queries over {outcome['roots']} roots",
        traversal_messages=outcome["traversal_messages"],
        interval_messages=outcome["interval_messages"],
        ratio=round(outcome["ratio"], 1),
        range_scans=totals["range_scans"],
    )


def test_compact_interval_run_feeds_the_perf_gate(record):
    """The compact emit_bench_json variant: identical answers, never more messages."""
    outcome = run_deep_lineage(dims=COMPACT_DIMS)
    assert outcome["identical"], "interval answers diverged from traversal"
    assert outcome["interval_messages"] <= outcome["traversal_messages"], outcome
    assert outcome["interval_messages"] > 0, "compact run never left the coordinator"
    record(
        "E16 interval-indexed queries (compact CI profile)",
        f"{outcome['queries']} queries, {outcome['nodes']} nodes",
        traversal_messages=outcome["traversal_messages"],
        interval_messages=outcome["interval_messages"],
        ratio=round(outcome["ratio"], 1),
    )
