"""E11 — batch-first execution: batched deltas and parallel query fan-out.

The paper's optimisation story is a trade between network traffic and
latency.  This experiment quantifies both halves of the batch-first runtime:

* **Batched delta evaluation** — a churn workload of 500+ base-tuple deltas
  is absorbed by two otherwise identical runtimes, one batch-first (the
  default) and one processing a single delta per evaluator pass (the
  historical mode, kept as ``batch_deltas=False``).  Batching must converge
  to the identical state with strictly fewer network messages and strictly
  fewer simulator events, and it is what makes bulk loads and heavy churn
  cheap.
* **Parallel query fan-out** — the same lineage queries are answered with
  sequential and parallel traversal.  Parallel traversal issues every child
  request of a step in one fan-out round (requests to the same peer share a
  message, replies come back batched), so it must complete in strictly fewer
  simulated rounds than sequential traversal while returning identical
  results — trading exhaustive exploration for latency exactly as §2.2
  describes.
"""

import time

from repro.core.optimizations import QueryOptions
from repro.core.query import DistributedQueryEngine
from repro.engine import topology
from repro.protocols import path_vector
from repro.workloads import ChurnPhase, ScenarioDriver, ScenarioSpec, TopologySpec

#: The churn workload, expressed as a scenario spec: heavy link flapping on a
#: 12-node random graph, sized so the trace applies well over 500 base-tuple
#: deltas (asserted below).  The two runtimes under comparison are the same
#: spec with only the ``batch_deltas`` knob toggled.
CHURN_SPEC = ScenarioSpec(
    name="e11-churn",
    topology=TopologySpec.make("random_connected", count=12, edge_probability=0.5, seed=11),
    protocol="mincost",
    seed=11,
    churn=(ChurnPhase.make("link_flap", batches=7, flaps_per_batch=18, fast_ratio=0.5),),
)


def run_churn(batch_deltas):
    """Drive the churn scenario; returns (runtime, applied churn deltas).

    The driver is closed before returning (worker threads released, in case
    the ``NETTRAILS_BACKEND`` hook selected a concurrent backend); the
    returned runtime stays readable for state and counter comparisons.
    """
    with ScenarioDriver(CHURN_SPEC.with_knobs(batch_deltas=batch_deltas)) as driver:
        report = driver.run()
    deltas = report.totals()["deltas"] - report.phase("seed").deltas
    return driver.runtime, deltas


def test_batched_deltas_beat_per_fact_evaluation(benchmark, record):
    start = time.perf_counter()
    per_fact, per_fact_deltas = run_churn(batch_deltas=False)
    per_fact_seconds = time.perf_counter() - start

    batched, deltas = benchmark.pedantic(run_churn, args=(True,), rounds=3, iterations=1)

    assert deltas == per_fact_deltas
    assert deltas >= 500, f"churn workload too small: {deltas} deltas"
    for relation in ("link", "path", "minCost"):
        assert batched.state(relation) == per_fact.state(relation)

    batched_messages = batched.message_stats().messages
    per_fact_messages = per_fact.message_stats().messages
    batched_events = batched.simulator.processed_events
    per_fact_events = per_fact.simulator.processed_events
    record(
        "E11 batched delta evaluation (MINCOST churn, 12 nodes)",
        f"per-fact evaluation ({deltas} deltas)",
        messages=per_fact_messages,
        events=per_fact_events,
        seconds=round(per_fact_seconds, 3),
    )
    record(
        "E11 batched delta evaluation (MINCOST churn, 12 nodes)",
        f"batched evaluation ({deltas} deltas)",
        messages=batched_messages,
        events=batched_events,
    )
    assert batched_messages < per_fact_messages
    assert batched_events < per_fact_events


def test_parallel_fanout_fewer_rounds_than_sequential(benchmark, record):
    net = topology.random_connected(10, edge_probability=0.5, seed=17)
    runtime = path_vector.setup(net)
    targets = [
        list(row)
        for row in sorted(runtime.state("bestPathCost"), key=lambda row: -row[2])[:5]
    ]

    def run(traversal):
        queries = DistributedQueryEngine(runtime)
        totals = {"messages": 0, "rounds": 0, "latency": 0.0}
        values = []
        for target in targets:
            result = queries.lineage(
                "bestPathCost", target, options=QueryOptions(traversal=traversal)
            )
            totals["messages"] += result.stats.messages
            totals["rounds"] += result.stats.rounds
            totals["latency"] += result.stats.latency
            values.append(result.value)
        totals["latency"] = round(totals["latency"], 3)
        return totals, values

    sequential, sequential_values = run("sequential")
    (parallel, parallel_values) = benchmark.pedantic(
        run, args=("parallel",), rounds=3, iterations=1
    )
    record(
        "E11 parallel query fan-out (lineage, path-vector, 10 nodes)",
        "sequential traversal",
        **sequential,
    )
    record(
        "E11 parallel query fan-out (lineage, path-vector, 10 nodes)",
        "parallel fan-out (batched requests/replies)",
        **parallel,
    )
    assert parallel_values == sequential_values
    assert parallel["rounds"] < sequential["rounds"]
    assert parallel["latency"] < sequential["latency"]
    assert parallel["messages"] <= sequential["messages"]
