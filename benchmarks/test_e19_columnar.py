"""E19 — columnar join core and compact drain traces: single-core speed.

Two claims of the columnar refactor are pinned here, one per layer:

* **Part A (engine)** — on the 1010-node ``isp_hierarchy(10, 10, 9)`` scale
  profile with PREFIX_ROUTING announcements and cross-subtree backup-link
  churn, the interned/columnar store plus the compiled columnar batch join
  (``columnar=True``) must beat the dictionary-of-sets reference
  (``columnar=False``) on single-core wall clock.  Churn windows insert and
  retract strictly-worse backup links, so every window is pure join + fire +
  aggregate re-evaluation work with no route cascade — exactly the inner
  loop the refactor targets.  Both modes must converge to the identical
  observable surface (messages, events, rounds); only the clock may differ.

* **Part B (transport)** — the process-pool backend's delta-encoded drain
  traces (``trace_delta=True``, the default) must cut the pipe bytes per
  remote drain versus shipping raw pickled traces (``trace_delta=False``).
  The per-pipe :class:`~repro.engine.procpool.TraceCodec` interns facts and
  hot strings across drains, so repeated churn over the same link set pays
  for a fact's bytes once per worker, not once per wave.

Timing methodology (part A): ``time.process_time`` (single-core CPU time,
immune to wall-clock scheduling noise), a ``gc.collect()`` before every
timed window, fresh runtimes per repetition, and interleaved mode order so
allocator/OS drift hits both modes equally.  The asserted floors
(``MIN_SPEEDUP``, ``MIN_BYTES_REDUCTION``) are margin-safe bounds for
shared CI runners; the measured ratios (observed ~1.5x and ~40%+ locally)
are recorded in the metrics report and the bench-trajectory JSON.
"""

from __future__ import annotations

import gc
import statistics
import time

from repro.engine import topology
from repro.engine.backends import ProcessPoolBackend
from repro.engine.runtime import NetTrailsRuntime
from repro.protocols import mincost, prefix_routing

#: Scale profile of part A: 10 tier-1 hubs, 10 tier-2 per hub, 9 stubs per
#: tier-2 — 1010 nodes, the same shape as E15/E16's scale runs.
SCALE_DIMS = (10, 10, 9)

#: Prefixes announced at tier-2 nodes before churn begins.
PREFIX_COUNT = 64

#: Cross-subtree backup links flapped per churn window.  Cost 4.0 is
#: strictly worse than every converged shortest path, so flaps never
#: trigger a route cascade — the windows measure join throughput, not
#: routing convergence.
BACKUP_LINKS = 40
BACKUP_COST = 4.0

#: Insert+delete rounds per timed window, and timed repetitions per mode.
CHURN_ROUNDS = 3
REPS = 5

#: Asserted wall-clock floor for columnar vs dict (measured ~1.5x locally;
#: the floor leaves headroom for noisy shared runners).
MIN_SPEEDUP = 1.25

#: Asserted floor for part B's bytes-per-drain reduction (measured ~40-43%
#: locally, and the reduction *grows* with churn length as the codec's
#: interning tables fill).
MIN_BYTES_REDUCTION = 0.30


def build_scale_runtime(columnar, dims=SCALE_DIMS, prefixes=PREFIX_COUNT, **runtime_kwargs):
    """Seed PREFIX_ROUTING on the scale hierarchy; return (runtime, batch)
    where *batch* is the bidirectional backup-link delta list one churn
    round inserts and then retracts.  Extra keyword arguments pass through
    to :class:`NetTrailsRuntime` (E20 reuses this profile with
    ``observability=`` flipped)."""
    net = topology.isp_hierarchy(*dims, seed=11)
    runtime = NetTrailsRuntime(
        prefix_routing.program(), net, provenance=False, columnar=columnar,
        **runtime_kwargs,
    )
    runtime.seed_links(run=True)
    tier2 = sorted(node for node in runtime.node_ids() if str(node).startswith("t2_"))
    prefix_routing.announce(
        runtime,
        [(tier2[i % len(tier2)], f"p{i}") for i in range(prefixes)],
        run=True,
    )
    links = []
    for i in range(BACKUP_LINKS):
        a, b = tier2[i % len(tier2)], tier2[(i + 17) % len(tier2)]
        if a.split("_")[1] != b.split("_")[1]:
            links.append((a, b, BACKUP_COST))
    batch = [[a, b, c] for a, b, c in links] + [[b, a, c] for a, b, c in links]
    return runtime, batch


def run_churn_window(runtime, batch, rounds=CHURN_ROUNDS):
    """Time *rounds* insert+delete windows of the backup-link batch; returns
    single-core CPU seconds (``time.process_time``)."""
    gc.collect()
    start = time.process_time()
    for _ in range(rounds):
        runtime.insert_batch("link", batch, run=True)
        runtime.delete_batch("link", batch, run=True)
    return time.process_time() - start


def run_columnar_ratio(reps=REPS, dims=SCALE_DIMS, prefixes=PREFIX_COUNT):
    """Interleaved columnar-vs-dict churn timing plus the observable surface
    of each mode (which must be identical)."""
    seconds = {False: [], True: []}
    surfaces = {}
    for _ in range(reps):
        for columnar in (False, True):
            runtime, batch = build_scale_runtime(columnar, dims, prefixes)
            try:
                seconds[columnar].append(run_churn_window(runtime, batch))
                surfaces[columnar] = {
                    "messages": runtime.message_stats().messages,
                    "events": runtime.simulator.processed_events,
                    "rounds": runtime.simulator.rounds,
                }
            finally:
                runtime.close()
    return {
        "dict_min": min(seconds[False]),
        "dict_median": statistics.median(seconds[False]),
        "columnar_min": min(seconds[True]),
        "columnar_median": statistics.median(seconds[True]),
        "min_speedup": min(seconds[False]) / min(seconds[True]),
        "median_speedup": statistics.median(seconds[False])
        / statistics.median(seconds[True]),
        "dict_surface": surfaces[False],
        "columnar_surface": surfaces[True],
    }


def run_trace_bytes(trace_delta, windows=12, dims=(3, 3, 3)):
    """Flap links on a compact hierarchy through the process backend; return
    the channel transport stats and the converged snapshot."""
    backend = ProcessPoolBackend(workers=2, trace_delta=trace_delta)
    with NetTrailsRuntime(
        mincost.program(), topology.isp_hierarchy(*dims, seed=7), backend=backend
    ) as runtime:
        runtime.seed_links(run=True)
        edges = sorted(runtime.topology.edges)
        for i in range(windows):
            a, b = edges[i % len(edges)]
            cost = runtime.topology.cost(a, b)
            runtime.delete("link", [a, b, cost])
            runtime.run_to_quiescence()
            runtime.insert("link", [a, b, cost])
            runtime.run_to_quiescence()
        stats = backend.transport_stats()
        snapshot = runtime.snapshot()
    return stats, snapshot


def bytes_per_drain(stats):
    return (stats["request_bytes"] + stats["reply_bytes"]) / max(1, stats["drains"])


def test_columnar_single_core_speedup(record):
    result = run_columnar_ratio()

    # The acceptance invariant: the columnar path is an execution-strategy
    # change only — every deterministic counter matches the dict reference.
    assert result["columnar_surface"] == result["dict_surface"], (
        "columnar mode changed the observable surface: "
        f"{result['columnar_surface']} vs {result['dict_surface']}"
    )

    assert result["min_speedup"] >= MIN_SPEEDUP, (
        f"columnar join core lost its single-core edge: "
        f"dict={result['dict_min']:.3f}s columnar={result['columnar_min']:.3f}s "
        f"({result['min_speedup']:.2f}x, floor {MIN_SPEEDUP}x)"
    )

    experiment = "E19 columnar join core (PREFIX_ROUTING churn, 1010-node hierarchy)"
    record(
        experiment,
        "dict-of-sets reference",
        cpu_seconds_min=round(result["dict_min"], 3),
        cpu_seconds_median=round(result["dict_median"], 3),
        messages=result["dict_surface"]["messages"],
        events=result["dict_surface"]["events"],
    )
    record(
        experiment,
        "columnar store + compiled join",
        cpu_seconds_min=round(result["columnar_min"], 3),
        cpu_seconds_median=round(result["columnar_median"], 3),
        speedup_min=round(result["min_speedup"], 2),
        speedup_median=round(result["median_speedup"], 2),
    )


def test_trace_delta_compresses_drain_traffic(record):
    delta_stats, delta_snapshot = run_trace_bytes(trace_delta=True)
    raw_stats, raw_snapshot = run_trace_bytes(trace_delta=False)

    # The acceptance invariant: the wire encoding is invisible to the
    # coordinator's replayed state.
    assert delta_snapshot == raw_snapshot, (
        "trace_delta changed the converged snapshot"
    )
    # One reply per request envelope, one trace per drain, whatever the
    # encoding: the codec only compresses, it never drops or reorders.
    assert delta_stats["drains"] == raw_stats["drains"]

    reduction = 1.0 - bytes_per_drain(delta_stats) / bytes_per_drain(raw_stats)
    assert reduction >= MIN_BYTES_REDUCTION, (
        f"delta-encoded traces stopped compressing: "
        f"{bytes_per_drain(delta_stats):.0f} vs {bytes_per_drain(raw_stats):.0f} "
        f"bytes/drain ({reduction:.1%} saved, floor {MIN_BYTES_REDUCTION:.0%})"
    )

    experiment = "E19 delta-encoded drain traces (MINCOST link flaps, process backend)"
    for label, stats in (("raw pickled traces", raw_stats), ("delta-encoded", delta_stats)):
        record(
            experiment,
            label,
            drains=stats["drains"],
            envelopes=stats["envelopes"],
            request_bytes=stats["request_bytes"],
            reply_bytes=stats["reply_bytes"],
            bytes_per_drain=round(bytes_per_drain(stats), 1),
        )
    record(
        experiment,
        "reduction",
        bytes_per_drain_saved=f"{reduction:.1%}",
    )
