"""E1 — incremental provenance maintenance (architecture, Figure 1 / §2.2).

Measures what the maintenance engine costs and shows that it is incremental:

* execution time and provenance-table sizes with and without provenance
  maintenance, across network sizes;
* the cost of absorbing a single link change incrementally versus recomputing
  the whole network state from scratch.
"""

import pytest

from repro.engine import topology
from repro.protocols import mincost

SIZES = [6, 10, 14]


def build(size, provenance):
    net = topology.random_connected(size, edge_probability=0.3, seed=size)
    return net, mincost.setup(net, provenance=provenance)


@pytest.mark.parametrize("size", SIZES)
def test_maintenance_overhead_tables(benchmark, record, size):
    """Time a full MINCOST run with provenance maintenance enabled."""

    def run():
        return build(size, provenance=True)

    net, runtime = benchmark.pedantic(run, rounds=3, iterations=1)
    assert mincost.check_against_reference(runtime, net)
    baseline_net, baseline = build(size, provenance=False)
    sizes = runtime.provenance.table_sizes()
    record(
        "E1 provenance maintenance overhead (MINCOST)",
        f"{size} nodes",
        facts=runtime.total_facts(),
        prov=sizes["prov"],
        ruleExec=sizes["ruleExec"],
        protocol_messages=runtime.message_stats().messages,
        messages_without_provenance=baseline.message_stats().messages,
    )
    # Provenance rides on the existing protocol messages: the maintenance
    # engine must not add any network traffic of its own.
    assert runtime.message_stats().messages == baseline.message_stats().messages


@pytest.mark.parametrize("size", SIZES)
def test_incremental_update_vs_from_scratch(benchmark, record, size):
    """Absorbing one link change incrementally touches far fewer events than a full rerun."""
    net, runtime = build(size, provenance=True)
    edge = sorted(net.edges)[0]
    cost = net.cost(*edge)

    def churn_one_link():
        runtime.remove_link(*edge)
        runtime.run_to_quiescence()
        runtime.add_link(edge[0], edge[1], cost)
        runtime.run_to_quiescence()

    before = runtime.simulator.processed_events
    benchmark.pedantic(churn_one_link, rounds=3, iterations=1)
    incremental_events = (runtime.simulator.processed_events - before) / 3 / 2  # per change

    fresh_net, fresh = build(size, provenance=True)
    scratch_events = fresh.simulator.processed_events

    record(
        "E1 incremental vs from-scratch (events per topology change)",
        f"{size} nodes",
        incremental=int(incremental_events),
        from_scratch=scratch_events,
        ratio=round(scratch_events / max(incremental_events, 1), 1),
    )
    assert incremental_events < scratch_events
