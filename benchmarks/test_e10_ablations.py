"""E10 — ablations of design choices called out in DESIGN.md §5.

Two ablations:

* **Aggregate update ordering** — the engine propagates aggregate changes as
  "new value first, then retract the old one".  The ablation flips the order
  and measures how much more work deletion cascades become (the motivating
  incident: retract-first blew up a 4-node disconnection from ~2 000 to more
  than 200 000 events).
* **Traversal order under pruning** — threshold pruning only saves messages
  when the traversal is sequential; this quantifies how much of E4's saving
  comes from the traversal-order choice rather than the threshold itself.
"""

import pytest

from repro.core.optimizations import QueryOptions
from repro.core.query import DistributedQueryEngine
from repro.engine import topology
from repro.engine.runtime import NetTrailsRuntime
from repro.protocols import mincost


def build_runtime(retract_first: bool):
    """The motivating topology: removing n0-n1 disconnects n1 and forces a count-up.

    The cost bound is lowered to 32 so that the ablated (retract-first) mode
    stays benchmarkable; with the default bound of 64 it needs more than
    400 000 events for this 4-node network, versus ~240 with the default
    ordering.
    """
    net = topology.random_connected(4, edge_probability=0.35, seed=8)
    runtime = NetTrailsRuntime(
        mincost.program(max_cost=32), net, aggregate_retract_first=retract_first
    )
    runtime.seed_links(run=True)
    return net, runtime


def deletion_cost(runtime, net):
    edge = ("n0", "n1")
    cost = net.cost(*edge)
    before_events = runtime.simulator.processed_events
    before_messages = runtime.network.stats.messages
    runtime.remove_link(*edge)
    runtime.run_to_quiescence(max_events=5_000_000)
    events = runtime.simulator.processed_events - before_events
    messages = runtime.network.stats.messages - before_messages
    runtime.add_link(edge[0], edge[1], cost)
    runtime.run_to_quiescence(max_events=5_000_000)
    return events, messages


@pytest.mark.parametrize("retract_first", [False, True], ids=["insert-first", "retract-first"])
def test_aggregate_ordering_ablation(benchmark, record, retract_first):
    net, runtime = build_runtime(retract_first)

    events, messages = benchmark.pedantic(
        deletion_cost, args=(runtime, net), rounds=2, iterations=1
    )
    assert mincost.check_against_reference(runtime, net)
    record(
        "E10 ablation: aggregate update ordering (disconnecting link failure, MINCOST, cost bound 32)",
        "insert-then-retract (default)" if not retract_first else "retract-then-insert (ablation)",
        events_per_deletion=events,
        messages_per_deletion=messages,
    )


def test_traversal_order_ablation(benchmark, record):
    net = topology.random_connected(9, edge_probability=0.5, seed=17)
    runtime = mincost.setup(net)
    queries = DistributedQueryEngine(runtime)
    targets = [list(row) for row in sorted(runtime.state("minCost"), key=lambda r: -r[2])[:8]]

    def run(options):
        return sum(
            queries.lineage("minCost", target, options=options).stats.messages
            for target in targets
        )

    combos = {
        "parallel, no threshold": QueryOptions(traversal="parallel"),
        "sequential, no threshold": QueryOptions(traversal="sequential"),
        "parallel + threshold=1": QueryOptions(traversal="parallel", threshold=1),
        "sequential + threshold=1": QueryOptions(traversal="sequential", threshold=1),
    }
    results = {}
    for label, options in combos.items():
        results[label] = run(options)
        record("E10 ablation: traversal order x pruning (lineage workload)", label, messages=results[label])

    benchmark.pedantic(run, args=(QueryOptions(traversal="sequential", threshold=1),), rounds=3, iterations=1)
    # the threshold only pays off when combined with sequential traversal
    assert results["sequential + threshold=1"] <= results["parallel + threshold=1"]
    assert results["sequential + threshold=1"] <= results["parallel, no threshold"]
