"""E17 — durability: WAL overhead, recovery time, concurrent-client serving.

Three measurements pin the durability subsystem (``repro.durability``):

* **WAL overhead** — the same seeded churn history runs on a plain runtime
  and on a durable one (``wal_fsync=False``; the fsync barrier is a
  deployment knob, not a message-path cost).  Journalling must be invisible
  on the wire (bit-identical message/event counts) and cost **< 2.5x**
  wall-clock on the message path.
* **Recovery time** — crash after the full history, then recover by genesis
  replay and by checkpoint bootstrap + tail replay; both must reproduce the
  uncrashed store and provenance bit-identically (the property oracle in
  ``tests/property/test_property_recovery.py`` proves this at *every* kill
  point; here it feeds the perf artifact), and the per-mode timings /
  replay counts land in ``MetricsReport.recovery``.
* **Concurrent-client serving** — N client threads × Zipf query mixes
  against a :class:`~repro.durability.ServiceRuntime` while churn commits
  interleave; client-observed latency percentiles (p50/p95/p99, queueing on
  the service lock included) land in ``MetricsReport.latency``.

The compact variants feed the CI perf gate via ``emit_bench_json.py``
(``e17.*`` metrics): WAL record/op counts and replay counts are
deterministic and gated; every wall-clock figure (overhead ratio, recovery
seconds, latency percentiles) is recorded ungated.
"""

from __future__ import annotations

import copy
import random
import time

from repro.durability import RecoveryManager, ServiceRuntime, scan, wal_path
from repro.engine import topology
from repro.engine.runtime import NetTrailsRuntime
from repro.protocols import mincost
from repro.workloads.churn import ChurnBatch, apply_batch, random_link_churn
from repro.workloads.clients import ClientMix, run_concurrent_clients
from repro.workloads.driver import MetricsReport

SEED = 3
STEPS = 8


def churn_script(net, seed=SEED, steps=STEPS):
    mirror = copy.deepcopy(net)
    return [
        ChurnBatch(index=index, phase="random_link_churn", ops=ops)
        for index, ops in enumerate(random_link_churn(mirror, random.Random(seed), steps))
    ]


def run_history(net, script, **knobs):
    """Seed + replay the script; returns (runtime closed, flat counters)."""
    started = time.perf_counter()
    with NetTrailsRuntime(mincost.SOURCE, copy.deepcopy(net), **knobs) as runtime:
        runtime.seed_links(run=True)
        for batch in script:
            apply_batch(runtime, batch, run=True)
        counters = {
            "messages": runtime.message_stats().messages,
            "events": runtime.simulator.processed_events,
            "rounds": runtime.simulator.rounds,
            "fingerprint_size": sum(
                len(runtime.provenance.store(node).prov_table())
                for node in runtime.node_ids()
            ),
        }
    counters["seconds"] = time.perf_counter() - started
    return counters


def run_wal_overhead(dims=(8,), seed=SEED, steps=STEPS, durable_dir=None):
    """Plain vs durable (no-fsync) replay of one churn history.

    ``durable_dir`` must be a fresh directory (the caller owns tmp cleanup).
    Returns the plain/durable counter dicts plus WAL shape and the
    wall-clock overhead ratio.
    """
    net = topology.ring(*dims)
    script = churn_script(net, seed=seed, steps=steps)
    plain = run_history(net, script)
    durable = run_history(
        net, script, durable_dir=durable_dir, wal_fsync=False
    )
    result = scan(wal_path(durable_dir))
    return {
        "plain": plain,
        "durable": durable,
        "overhead_ratio": durable["seconds"] / max(plain["seconds"], 1e-9),
        "wal_records": len(result.records),
        "wal_bytes": result.total_bytes,
        "wal_ops": sum(
            len(record.data["ops"]) for record in result.records
            if record.type == "batch"
        ),
    }


def run_recovery_benchmark(durable_dir, dims=(8,), seed=SEED, steps=STEPS,
                           checkpoint_after=STEPS // 2):
    """One durable history with a mid-run checkpoint; recover both ways.

    Returns per-mode recovery metrics plus an ``identical`` flag comparing
    each recovered runtime's store snapshots against the uncrashed twin.
    """
    net = topology.ring(*dims)
    script = churn_script(net, seed=seed, steps=steps)
    with NetTrailsRuntime(
        mincost.SOURCE, copy.deepcopy(net),
        durable_dir=durable_dir, wal_fsync=False,
    ) as runtime:
        runtime.seed_links(run=True)
        for index, batch in enumerate(script):
            apply_batch(runtime, batch, run=True)
            if index + 1 == checkpoint_after:
                runtime.checkpoint()
        expected = {
            repr(node): runtime.nodes[node].store.snapshot()
            for node in runtime.node_ids()
        }
    # close() == crash here: the WAL is flushed at every commit point.

    metrics = {}
    identical = True
    batches = {}
    for mode in ("genesis", "checkpoint"):
        result = RecoveryManager(durable_dir).recover(mode=mode, attach=False)
        try:
            recovered = {
                repr(node): result.runtime.nodes[node].store.snapshot()
                for node in result.runtime.node_ids()
            }
            identical = identical and recovered == expected and result.mode == mode
            batches[mode] = result.batches_replayed
            metrics.update(result.recovery_metrics())
        finally:
            result.runtime.close()
    return {"metrics": metrics, "identical": identical, "batches": batches}


def run_concurrent_serving(dims=(8,), seed=SEED, clients=4, queries_per_client=12):
    """Client fleet × interleaved churn against a (non-durable) service.

    Durable mode is measured by the overhead benchmark; serving latency is
    about lock arbitration, which is identical either way.  Returns the
    client report plus the assembled ``MetricsReport`` latency payload.
    """
    net = topology.ring(*dims)
    script = churn_script(net, seed=seed, steps=4)
    with ServiceRuntime("mincost", net) as service:
        service.seed_links()
        mix = ClientMix(clients=clients, queries_per_client=queries_per_client)
        report = run_concurrent_clients(
            service, mix, seed=seed, churn_batches=script
        )
        latency = service.latency_metrics()
    return {"report": report, "latency": latency}


def test_e17_wal_overhead_stays_under_bound(tmp_path, record):
    outcome = run_wal_overhead(durable_dir=tmp_path / "durable")
    assert outcome["durable"]["messages"] == outcome["plain"]["messages"], (
        "journalling changed the wire traffic"
    )
    assert outcome["durable"]["events"] == outcome["plain"]["events"]
    assert outcome["durable"]["fingerprint_size"] == outcome["plain"]["fingerprint_size"]
    assert outcome["overhead_ratio"] < 2.5, (
        f"durable message path is {outcome['overhead_ratio']:.2f}x the plain "
        "runtime (bound: 2.5x with wal_fsync=False)"
    )
    assert outcome["wal_records"] == 1 + 1 + STEPS  # init + seed + churn windows
    record(
        "E17 durability: WAL overhead (8-node ring, 8 churn windows)",
        f"{outcome['wal_records']} WAL records, {outcome['wal_bytes']} bytes",
        plain_seconds=round(outcome["plain"]["seconds"], 3),
        durable_seconds=round(outcome["durable"]["seconds"], 3),
        overhead_ratio=round(outcome["overhead_ratio"], 2),
        wal_ops=outcome["wal_ops"],
    )


def test_e17_recovery_is_identical_and_measured(tmp_path, record):
    outcome = run_recovery_benchmark(tmp_path / "durable")
    assert outcome["identical"], "a recovered runtime diverged from the uncrashed twin"
    assert outcome["batches"]["genesis"] == 1 + STEPS
    assert outcome["batches"]["checkpoint"] == STEPS - STEPS // 2
    metrics = outcome["metrics"]
    report = MetricsReport(
        scenario="e17-recovery", seed=SEED, backend="serial",
        batch_size=None, nodes=8, edges=8, trace_digest="",
        recovery=metrics,
    )
    document = report.to_dict()
    assert document["recovery"]["genesis_seconds"] >= 0.0
    assert document["recovery"]["checkpoint_batches_replayed"] < (
        document["recovery"]["genesis_batches_replayed"]
    )
    assert "recovery" not in report.deterministic_view()
    record(
        "E17 durability: crash recovery (8-node ring, checkpoint mid-run)",
        f"genesis {outcome['batches']['genesis']} vs "
        f"checkpoint {outcome['batches']['checkpoint']} batches replayed",
        genesis_seconds=round(metrics["genesis_seconds"], 3),
        checkpoint_seconds=round(metrics["checkpoint_seconds"], 3),
    )


def test_e17_concurrent_clients_report_latency_percentiles(record):
    outcome = run_concurrent_serving()
    client_report = outcome["report"]
    assert client_report.issued == 4 * 12
    assert client_report.commits == 4
    report = MetricsReport(
        scenario="e17-serving", seed=SEED, backend="serial",
        batch_size=None, nodes=8, edges=8, trace_digest="",
        latency=outcome["latency"],
    )
    document = report.to_dict()
    for key in ("query_p50", "query_p95", "query_p99", "commit_mean"):
        assert key in document["latency"], document["latency"]
    assert 0.0 < document["latency"]["query_p50"] <= document["latency"]["query_p99"]
    assert "latency" not in report.deterministic_view()
    record(
        "E17 durability: concurrent-client serving (4 clients x 12 queries)",
        f"{client_report.issued} queries over {client_report.commits} interleaved commits",
        p50=outcome["latency"]["query_p50"],
        p95=outcome["latency"]["query_p95"],
        p99=outcome["latency"]["query_p99"],
        errors=client_report.errors,
    )
