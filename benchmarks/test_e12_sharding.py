"""E12 — sharded per-node stores: hub-node batch absorption, 4 shards vs 1.

A star topology concentrates every delta wave on the hub: after each churn
round the hub absorbs one large coalesced batch while the spokes see small
ones.  Sharding the hub's store (``num_shards=4``) splits those batches into
per-shard sub-batches and runs the semi-naive join passes per shard —
serially in the deterministic reference mode, or on a thread pool with
``shard_workers``.

Sharding is an *internal* reorganisation of a node: the smoke assertions pin
that threaded shard absorption changes neither the converged protocol state,
nor the network message/delta counts, nor the per-node provenance versions
(one bump per logical-node batch regardless of shard count).
"""

import time

from repro.engine import topology
from repro.engine.runtime import NetTrailsRuntime
from repro.engine.store import ShardedTupleStore
from repro.protocols import mincost

#: Spokes churned per round and number of delete/reinsert rounds; sized so
#: the hub repeatedly absorbs multi-delta batches.
CHURN_ROUNDS = 4
HUB = "n0"


def run_hub_churn(num_shards=None, shard_workers=0):
    """Seed MINCOST on a star, then churn the hub's links; return the runtime."""
    net = topology.star(10)
    runtime = NetTrailsRuntime(
        mincost.program(), net, num_shards=num_shards, shard_workers=shard_workers
    )
    runtime.seed_links(run=True)
    hub_rows = [list(values) for values in runtime.state("link") if values[0] == HUB]
    churned = hub_rows[::2]
    for _ in range(CHURN_ROUNDS):
        runtime.delete_batch("link", churned, run=True)
        runtime.insert_batch("link", churned, run=True)
    return runtime


def test_threaded_shard_absorption_keeps_message_counts(benchmark, record):
    from contextlib import ExitStack

    start = time.perf_counter()
    flat = run_hub_churn()
    flat_seconds = time.perf_counter() - start

    start = time.perf_counter()
    serial = run_hub_churn(num_shards=4)
    serial_seconds = time.perf_counter() - start

    with ExitStack() as stack:
        stack.enter_context(serial)

        def run_threaded():
            # every round's worker pools are registered for closing
            return stack.enter_context(run_hub_churn(num_shards=4, shard_workers=2))

        threaded = benchmark.pedantic(run_threaded, rounds=2, iterations=1)
        hub_store = threaded.nodes[HUB].store
        assert isinstance(hub_store, ShardedTupleStore)
        assert sum(shard.count() for shard in hub_store.shards) == hub_store.count()

        for runtime, label in ((serial, "serial"), (threaded, "threaded")):
            for relation in ("link", "path", "minCost"):
                assert runtime.state(relation) == flat.state(relation), (label, relation)
            # Sharding must be invisible on the wire and to provenance
            # versioning: same message/delta counts, same per-batch bumps.
            # (Byte estimates may drift by a few characters: firing ids embed
            # a per-node sequence number whose order is not pinned.)
            assert runtime.message_stats().messages == flat.message_stats().messages, label
            assert (
                runtime.nodes[HUB].stats.deltas_received
                == flat.nodes[HUB].stats.deltas_received
            ), label
            assert runtime.provenance.versions() == flat.provenance.versions(), label
            assert (
                runtime.nodes[HUB].stats.batches_processed
                == flat.nodes[HUB].stats.batches_processed
            ), label

        hub_stats = threaded.nodes[HUB].stats
        record(
            "E12 sharded hub absorption (MINCOST star-10 churn)",
            "unsharded baseline",
            messages=flat.message_stats().messages,
            hub_batches=flat.nodes[HUB].stats.batches_processed,
            hub_deltas=flat.nodes[HUB].stats.updates_processed,
            seconds=round(flat_seconds, 3),
        )
        record(
            "E12 sharded hub absorption (MINCOST star-10 churn)",
            "4 shards, serial executor",
            messages=serial.message_stats().messages,
            hub_batches=serial.nodes[HUB].stats.batches_processed,
            seconds=round(serial_seconds, 3),
        )
        record(
            "E12 sharded hub absorption (MINCOST star-10 churn)",
            "4 shards, 2 shard workers",
            messages=threaded.message_stats().messages,
            hub_batches=hub_stats.batches_processed,
            hub_deltas=hub_stats.updates_processed,
        )
