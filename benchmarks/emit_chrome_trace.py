"""Emit a sample Chrome trace-event timeline from the smoke scenario.

Runs the workload subsystem's ``smoke`` profile with observability enabled
and writes the resulting span timeline as a Chrome trace-event JSON file —
openable in ``chrome://tracing`` or https://ui.perfetto.dev.  The CI
``bench-trajectory`` job uploads the file as a build artifact, so every
commit ships an inspectable query/drain timeline alongside the metrics
JSON:

    python benchmarks/emit_chrome_trace.py --out BENCH_TRACE_${GITHUB_RUN_ID}.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", required=True, help="path of the trace JSON to write")
    args = parser.parse_args(argv)

    from repro.obs.export import write_chrome_trace
    from repro.workloads.driver import ScenarioDriver
    from repro.workloads.profiles import smoke

    spec = smoke().with_knobs(observability=True)
    with ScenarioDriver(spec) as driver:
        report = driver.run()
        tracer = driver.runtime.obs.tracer
        traces = len(tracer.trace_ids())
        spans = len(tracer.finished_spans())
        write_chrome_trace(args.out, tracer, process_name="nettrails-smoke")

    with open(args.out, "r", encoding="utf-8") as handle:
        events = len(json.load(handle)["traceEvents"])
    totals = report.totals()
    print(
        f"wrote {args.out}: {events} trace events from {spans} spans "
        f"across {traces} traces ({totals['queries']} queries, "
        f"{totals['messages']} messages)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
