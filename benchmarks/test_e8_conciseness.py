"""E8 — conciseness of declarative protocol specifications (§2.1).

"Previous work has demonstrated that a variety of distributed systems ... can
be specified and implemented in NDlog in orders of magnitude less lines of
code than imperative implementations."  We compare the NDlog programs shipped
in :mod:`repro.protocols` against straightforward imperative Python baselines
(:mod:`benchmarks.imperative_baselines`), and also check that the two agree
semantically.
"""

import pytest

from repro.engine import topology
from repro.protocols import library, mincost, path_vector, distance_vector, dsr

from imperative_baselines import (
    IMPERATIVE_IMPLEMENTATIONS,
    distance_vector_imperative,
    dsr_imperative,
    imperative_line_count,
    mincost_imperative,
    path_vector_imperative,
)


@pytest.mark.parametrize("name", sorted(IMPERATIVE_IMPLEMENTATIONS))
def test_specification_size(benchmark, record, name):
    ndlog_lines = benchmark(library.ndlog_line_count, name)
    ndlog_rules = library.ndlog_rule_count(name)
    imperative_lines = imperative_line_count(name)
    record(
        "E8 specification conciseness (NDlog vs imperative Python)",
        name,
        ndlog_rules=ndlog_rules,
        ndlog_lines=ndlog_lines,
        imperative_lines=imperative_lines,
        reduction=f"{imperative_lines / ndlog_lines:.1f}x",
    )
    assert ndlog_lines < imperative_lines


def test_declarative_and_imperative_agree_semantically(benchmark, record):
    net = topology.random_connected(8, edge_probability=0.35, seed=3)

    def imperative_suite():
        return (
            mincost_imperative(net),
            distance_vector_imperative(net),
            {pair for pair in path_vector_imperative(net)},
            dsr_imperative(net, net.nodes[0], net.nodes[-1]),
        )

    reference_costs, reference_hops, _pv_pairs, reference_routes = benchmark(imperative_suite)

    mc = mincost.setup(net)
    assert {(s, d): c for (s, d, c) in mc.state("minCost")} == reference_costs
    dv = distance_vector.setup(net)
    assert {(s, d): h for (s, d, h) in dv.state("bestHop")} == reference_hops
    d = dsr.setup(net)
    dsr.request_route(d, net.nodes[0], net.nodes[-1])
    assert set(dsr.discovered_routes(d, net.nodes[0], net.nodes[-1])) == reference_routes

    record(
        "E8 semantic agreement (declarative vs imperative)",
        "8-node random topology",
        mincost_pairs=len(reference_costs),
        distance_vector_pairs=len(reference_hops),
        dsr_routes=len(reference_routes),
        all_equal=True,
    )
