"""E9 — snapshot, log store and replay pipeline (§2.3).

Periodic per-node snapshots are collected into the central log store,
persisted, reloaded and replayed — the machinery behind the demonstration's
interactive visualization and replay.
"""

import pytest

from repro.engine import topology
from repro.logstore import LogStore, ReplaySession
from repro.protocols import mincost
from repro.viz import provenance_to_dot


def test_snapshot_collection_and_persistence(benchmark, record, tmp_path):
    net = topology.random_connected(8, edge_probability=0.3, seed=29)
    runtime = mincost.setup(net)
    store = LogStore()

    def capture():
        return store.collect(runtime)

    snapshot = benchmark(capture)
    path = tmp_path / "log.json"
    store.save(path)
    loaded = LogStore.load(path)
    record(
        "E9 snapshot capture and persistence (MINCOST, 8 nodes)",
        "one system-wide snapshot",
        facts=snapshot.total_facts(),
        nodes=len(snapshot.node_ids()),
        json_bytes=path.stat().st_size // len(store.snapshots()),
        snapshots_persisted=len(loaded),
    )
    assert loaded.latest().relation("minCost") == snapshot.relation("minCost")


def test_replay_of_a_churn_episode(benchmark, record):
    net = topology.random_connected(8, edge_probability=0.3, seed=29)
    runtime = mincost.setup(net)
    store = LogStore()
    store.collect(runtime, label="T0")
    edges = sorted(net.edges)[:3]
    for index, (a, b) in enumerate(edges, start=1):
        cost = net.cost(a, b)
        runtime.remove_link(a, b)
        runtime.run_to_quiescence()
        store.collect(runtime, label=f"T{index}-down")
        runtime.add_link(a, b, cost)
        runtime.run_to_quiescence()
        store.collect(runtime, label=f"T{index}-up")

    def replay():
        session = ReplaySession(store)
        diffs = []
        while not session.at_end():
            diffs.append(session.step())
        return session, diffs

    session, diffs = benchmark(replay)
    graph = session.provenance_graph()
    dot = provenance_to_dot(graph)
    record(
        "E9 replay of a churn episode (3 link failures + recoveries)",
        f"{len(store)} snapshots",
        replay_steps=len(diffs),
        tuples_removed=sum(diff.removed_count() for diff in diffs),
        tuples_added=sum(diff.added_count() for diff in diffs),
        final_graph_vertices=graph.tuple_count + graph.rule_exec_count,
        dot_bytes=len(dot),
    )
    # churn is symmetric, so the replay ends where it started
    assert store.snapshots()[0].relation("minCost") == store.latest().relation("minCost")
