"""E14 — per-VID cache invalidation keeps the hit rate alive under churn.

The query cache used to validate entries against a *global* provenance
version: any delta anywhere discarded every cached sub-result, so under
network dynamics — the very regime the paper's caching optimisation targets
— the hit rate was effectively zero.  Entries are now tagged with per-VID
reachability versions that bump only when the queried vertex's derivation
subtree changes.

This benchmark converges MINCOST on a star, primes the caches with a fixed
query working set, then repeatedly flaps the hub links of *other* leaves —
churn that rewrites large parts of the provenance tables (including losing
alternatives inside the queried tuples' own aggregation groups) without
touching any queried subtree.  Per-VID validation keeps every entry alive
through every churn step; the ``cache_validation="global"`` ablation — the
old scheme — records zero hits after the first delta.  Every cached answer
is asserted bit-identical to an uncached traversal throughout.
"""

import pytest

from repro.core.optimizations import QueryOptions
from repro.core.query import (
    CACHE_VALIDATION_GLOBAL,
    CACHE_VALIDATION_VID,
    DistributedQueryEngine,
)
from repro.engine import topology
from repro.protocols import mincost

HUB = "n0"

#: The query working set: pair-wise minimal costs whose derivation subtrees
#: live on n0/n1/n2 only — disjoint from every churned leaf.
TARGETS = [
    ["n1", HUB, 1.0],  # leaf -> hub, purely local derivation
    [HUB, "n1", 1.0],  # hub -> leaf
    ["n1", "n2", 2.0],  # leaf -> leaf through the hub (multi-node subtree)
]

#: Leaves whose hub links are flapped (full retraction cascade + re-derive);
#: none of them appears in any target's derivation subtree.
CHURN_LEAVES = ["n5", "n6", "n7"]


def run_cache_workload(cache_validation=CACHE_VALIDATION_VID):
    """Prime the cache, churn unrelated leaves, re-query after every step.

    Returns the per-churn-step cache-hit deltas, the message cost of each
    sweep, and the engine's final cache counters.  Asserts every cached
    answer equals the uncached traversal's.
    """
    runtime = mincost.setup(topology.star(8))
    engine = DistributedQueryEngine(runtime, cache_validation=cache_validation)
    cached = QueryOptions(use_cache=True)

    def sweep():
        hits_before = engine.cache_totals()["hits"]
        messages = 0
        for target in TARGETS:
            result = engine.lineage("minCost", target, options=cached)
            reference = engine.lineage("minCost", target, options=QueryOptions())
            assert result.value == reference.value, target
            messages += result.stats.messages
        return engine.cache_totals()["hits"] - hits_before, messages

    # Cold sweep: fills the caches.  Its hit count is the intra-sweep
    # baseline — sub-results shared between targets inside one quiescent
    # window hit under *any* validation scheme; what distinguishes the
    # schemes is whether entries survive the churn *between* sweeps.
    cold_hits, prime_messages = sweep()
    per_step_hits = []
    per_step_messages = []
    for leaf in CHURN_LEAVES:
        runtime.remove_link(leaf, HUB)
        runtime.run_to_quiescence()
        runtime.add_link(leaf, HUB, 1.0)
        runtime.run_to_quiescence()
        hits, messages = sweep()
        per_step_hits.append(hits)
        per_step_messages.append(messages)
    totals = engine.cache_totals()
    lookups = totals["hits"] + totals["misses"]
    return {
        "cold_hits": cold_hits,
        "per_step_hits": per_step_hits,
        "per_step_messages": per_step_messages,
        "prime_messages": prime_messages,
        "totals": totals,
        "hit_rate": round(totals["hits"] / lookups, 3) if lookups else 0.0,
    }


def run_capped_workload(capacity=2):
    """A wide query working set against tiny per-node caches: LRU eviction."""
    runtime = mincost.setup(topology.star(8))
    runtime.query_cache_capacity = capacity
    engine = DistributedQueryEngine(runtime)
    cached = QueryOptions(use_cache=True)
    targets = [["n1", HUB, 1.0]] + [["n1", f"n{leaf}", 2.0] for leaf in range(2, 8)]
    for target in targets:
        engine.lineage("minCost", target, options=cached)
    return engine


def test_per_vid_validation_survives_unrelated_churn(benchmark, record):
    result = benchmark.pedantic(run_cache_workload, rounds=1, iterations=1)
    record(
        "E14 cache invalidation under churn (MINCOST star-8, 3 unrelated link flaps)",
        "per-VID reachability versions",
        hit_rate=result["hit_rate"],
        cold_hits=result["cold_hits"],
        per_step_hits=result["per_step_hits"],
        sweep_messages=result["per_step_messages"],
        cold_messages=result["prime_messages"],
    )
    # The acceptance property: churn outside the queried subtrees keeps the
    # cache alive at EVERY step — strictly more hits than intra-sweep reuse
    # alone can explain (the old global scheme never exceeds that baseline).
    assert all(hits > result["cold_hits"] for hits in result["per_step_hits"])
    # ...and the surviving entries actually save traffic.
    assert result["prime_messages"] > 0
    assert all(messages == 0 for messages in result["per_step_messages"])


def test_global_validation_baseline_flushes_every_step(record):
    result = run_cache_workload(cache_validation=CACHE_VALIDATION_GLOBAL)
    record(
        "E14 cache invalidation under churn (MINCOST star-8, 3 unrelated link flaps)",
        "global version (old scheme, ablation)",
        hit_rate=result["hit_rate"],
        cold_hits=result["cold_hits"],
        per_step_hits=result["per_step_hits"],
        sweep_messages=result["per_step_messages"],
        cold_messages=result["prime_messages"],
    )
    # No cross-step survival: every sweep after a delta starts from scratch,
    # paying the full traversal traffic again.
    assert all(hits <= result["cold_hits"] for hits in result["per_step_hits"])
    assert all(
        messages == result["prime_messages"] for messages in result["per_step_messages"]
    )


def test_per_vid_beats_global_hit_rate():
    per_vid = run_cache_workload()
    coarse = run_cache_workload(cache_validation=CACHE_VALIDATION_GLOBAL)
    assert per_vid["hit_rate"] > coarse["hit_rate"]
    assert sum(per_vid["per_step_hits"]) > sum(coarse["per_step_hits"])


def test_capped_cache_evicts_lru(record):
    engine = run_capped_workload(capacity=2)
    totals = engine.cache_totals()
    record(
        "E14 capped per-node caches (star-8, capacity 2 entries/node)",
        "LRU eviction",
        stores=totals["stores"],
        evictions=totals["evictions"],
        live_entries=totals["entries"],
    )
    assert totals["evictions"] > 0
    per_node = engine.cache_stats()
    assert all(stats["entries"] <= 2 for stats in per_node.values())


def test_invalid_capacity_rejected():
    from repro.engine.runtime import NetTrailsRuntime
    from repro.errors import EngineError

    with pytest.raises(EngineError):
        NetTrailsRuntime(mincost.program(), topology.star(3), query_cache_capacity=-1)
