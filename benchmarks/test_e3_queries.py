"""E3 — distributed provenance queries (§2.2 / §3).

For the query types named in the paper (contributing base tuples /
participating nodes / number of alternative derivations) this measures query
latency (simulated and wall-clock) and network cost as the network grows.
"""

import pytest

from repro.core.query import DistributedQueryEngine
from repro.engine import topology
from repro.protocols import mincost, path_vector

SIZES = [6, 10, 14]


def target_tuple(runtime):
    """The most expensive minCost tuple: the deepest provenance tree."""
    rows = runtime.state("minCost")
    return list(max(rows, key=lambda row: row[2]))


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", ["lineage", "participants", "count"])
def test_query_cost_by_mode_and_size(benchmark, record, mode, size):
    net = topology.random_connected(size, edge_probability=0.3, seed=size)
    runtime = mincost.setup(net)
    queries = DistributedQueryEngine(runtime)
    target = target_tuple(runtime)

    result = benchmark(queries.query, "minCost", target, mode)
    record(
        f"E3 provenance query cost ({mode})",
        f"{size} nodes",
        messages=result.stats.messages,
        simulated_latency=round(result.stats.latency, 3),
        nodes_visited=result.stats.nodes_visited,
        answer_size=queries.reducer(mode).size(result.value),
    )


def test_query_cost_on_path_vector(benchmark, record):
    """Path-vector provenance is deeper (paths carry their whole history)."""
    net = topology.random_connected(10, edge_probability=0.3, seed=23)
    runtime = path_vector.setup(net)
    queries = DistributedQueryEngine(runtime)
    source, destination, cost = max(runtime.state("bestPathCost"), key=lambda row: row[2])

    result = benchmark(queries.lineage, "bestPathCost", [source, destination, cost])
    record(
        "E3 provenance query cost (path-vector lineage)",
        "10 nodes",
        messages=result.stats.messages,
        nodes_visited=result.stats.nodes_visited,
        contributing_links=len(result.value),
    )
