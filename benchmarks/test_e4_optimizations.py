"""E4 — query optimisations reduce network traffic (§2.2 / §3).

The paper demonstrates "that optimization techniques, such as caching and
threshold-based pruning, effectively reduce the network traffic".  This
benchmark issues the same workload of provenance queries with the
optimisations off and on and reports the message counts.
"""

import pytest

from repro.core.optimizations import QueryOptions
from repro.core.query import DistributedQueryEngine
from repro.engine import topology
from repro.protocols import mincost, path_vector


@pytest.fixture(scope="module")
def workload():
    """A converged path-vector network plus the query targets used as the workload."""
    net = topology.random_connected(10, edge_probability=0.4, seed=31)
    runtime = path_vector.setup(net)
    rows = sorted(runtime.state("bestPathCost"), key=lambda row: -row[2])
    targets = [list(row) for row in rows[:8]]
    return runtime, targets


def run_workload(runtime, targets, options, repetitions=2):
    queries = DistributedQueryEngine(runtime)
    messages = 0
    latency = 0.0
    cache_hits = 0
    for _ in range(repetitions):
        for target in targets:
            result = queries.lineage("bestPathCost", target, options=options)
            messages += result.stats.messages
            latency += result.stats.latency
            cache_hits += result.stats.cache_hits
    return {"messages": messages, "latency": round(latency, 3), "cache_hits": cache_hits}


def test_caching_reduces_traffic(benchmark, record, workload):
    runtime, targets = workload
    baseline = run_workload(runtime, targets, QueryOptions.baseline())
    cached = benchmark.pedantic(
        run_workload, args=(runtime, targets, QueryOptions(use_cache=True)), rounds=3, iterations=1
    )
    record(
        "E4 caching (repeated lineage queries, path-vector, 10 nodes)",
        "no optimisation",
        **baseline,
    )
    record(
        "E4 caching (repeated lineage queries, path-vector, 10 nodes)",
        "per-node result caching",
        **cached,
    )
    assert cached["messages"] < baseline["messages"]


def test_threshold_pruning_reduces_traffic(benchmark, record):
    """Pruning after the first derivation avoids exploring the alternatives."""
    net = topology.random_connected(9, edge_probability=0.5, seed=17)
    runtime = mincost.setup(net)
    queries = DistributedQueryEngine(runtime)
    rows = sorted(runtime.state("minCost"), key=lambda row: -row[2])
    targets = [list(row) for row in rows[:8]]

    def run(options):
        total = 0
        for target in targets:
            total += queries.lineage("minCost", target, options=options).stats.messages
        return total

    baseline_messages = run(QueryOptions.baseline())
    pruned_messages = benchmark.pedantic(
        run,
        args=(QueryOptions(traversal="sequential", threshold=1),),
        rounds=3,
        iterations=1,
    )
    record(
        "E4 threshold pruning (lineage, dense MINCOST, 9 nodes)",
        "parallel traversal, no pruning",
        messages=baseline_messages,
    )
    record(
        "E4 threshold pruning (lineage, dense MINCOST, 9 nodes)",
        "sequential traversal, threshold=1",
        messages=pruned_messages,
    )
    assert pruned_messages <= baseline_messages


def test_all_optimizations_combined(benchmark, record, workload):
    runtime, targets = workload
    baseline = run_workload(runtime, targets, QueryOptions.baseline())
    optimized = benchmark.pedantic(
        run_workload, args=(runtime, targets, QueryOptions.optimized(threshold=3)), rounds=3, iterations=1
    )
    record(
        "E4 all optimisations combined (path-vector workload)",
        "baseline",
        **baseline,
    )
    record(
        "E4 all optimisations combined (path-vector workload)",
        "cache + sequential + threshold",
        **optimized,
    )
    assert optimized["messages"] < baseline["messages"]
