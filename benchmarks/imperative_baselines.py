"""Imperative baseline implementations of the shipped protocols.

The declarative-networking claim reproduced by experiment E8 is that NDlog
specifications are dramatically more concise than imperative implementations
of the same protocols.  To measure that honestly we ship straightforward —
not golfed, not padded — imperative Python implementations of the same four
protocols, written the way a networking programmer would: explicit queues,
explicit neighbor tables, explicit message handling.

These are also used as *semantics baselines*: the dynamic benchmarks check
that the declarative engine reaches the same final state the imperative
implementations compute.
"""

from __future__ import annotations

import heapq
import inspect
from typing import Dict, List, Optional, Set, Tuple

from repro.engine.topology import Topology


def mincost_imperative(topology: Topology) -> Dict[Tuple[str, str], float]:
    """All-pairs minimal path costs (Dijkstra from every source)."""
    adjacency: Dict[str, List[Tuple[str, float]]] = {node: [] for node in topology.nodes}
    for a, b, cost in topology.directed_edges():
        adjacency[a].append((b, cost))
    result: Dict[Tuple[str, str], float] = {}
    for source in topology.nodes:
        distances: Dict[str, float] = {source: 0.0}
        heap: List[Tuple[float, str]] = [(0.0, source)]
        while heap:
            distance, node = heapq.heappop(heap)
            if distance > distances.get(node, float("inf")):
                continue
            for neighbor, cost in adjacency[node]:
                candidate = distance + cost
                if candidate < distances.get(neighbor, float("inf")):
                    distances[neighbor] = candidate
                    heapq.heappush(heap, (candidate, neighbor))
        for destination, distance in distances.items():
            if destination != source:
                result[(source, destination)] = distance
    return result


def path_vector_imperative(topology: Topology) -> Dict[Tuple[str, str], Tuple[str, ...]]:
    """Path-vector routing: iterate best-path exchange until a fixpoint."""
    best: Dict[Tuple[str, str], Tuple[float, Tuple[str, ...]]] = {}
    for a, b, cost in topology.directed_edges():
        best[(a, b)] = (cost, (a, b))
    changed = True
    while changed:
        changed = False
        for a, b, cost in topology.directed_edges():
            # a considers every best path its neighbor b advertises
            for (source, destination), (known_cost, known_path) in list(best.items()):
                if source != b or a in known_path:
                    continue
                candidate_cost = cost + known_cost
                candidate_path = (a,) + known_path
                current = best.get((a, destination))
                if current is None or candidate_cost < current[0]:
                    best[(a, destination)] = (candidate_cost, candidate_path)
                    changed = True
    return {pair: path for pair, (_cost, path) in best.items()}


def distance_vector_imperative(topology: Topology, max_hops: int = 16) -> Dict[Tuple[str, str], int]:
    """Distance-vector routing: synchronous Bellman-Ford rounds on hop counts."""
    hops: Dict[Tuple[str, str], int] = {}
    for a, b, _cost in topology.directed_edges():
        hops[(a, b)] = 1
    for _round in range(max_hops):
        changed = False
        for a, b, _cost in topology.directed_edges():
            for (source, destination), count in list(hops.items()):
                if source != b or destination == a:
                    continue
                candidate = count + 1
                if candidate >= max_hops:
                    continue
                if candidate < hops.get((a, destination), max_hops):
                    hops[(a, destination)] = candidate
                    changed = True
        if not changed:
            break
    return hops


def dsr_imperative(topology: Topology, source: str, destination: str) -> Set[Tuple[str, ...]]:
    """DSR route discovery: flood route requests, collect every simple path."""
    routes: Set[Tuple[str, ...]] = set()
    frontier: List[Tuple[str, Tuple[str, ...]]] = [(source, (source,))]
    while frontier:
        node, path = frontier.pop()
        if node == destination:
            routes.add(path)
            continue
        for neighbor in topology.neighbors(node):
            if neighbor not in path:
                frontier.append((neighbor, path + (neighbor,)))
    return routes


#: protocol name -> the functions making up its imperative implementation
IMPERATIVE_IMPLEMENTATIONS = {
    "mincost": [mincost_imperative],
    "path_vector": [path_vector_imperative],
    "distance_vector": [distance_vector_imperative],
    "dsr": [dsr_imperative],
}


def imperative_line_count(name: str) -> int:
    """Count non-blank, non-comment, non-docstring source lines of a baseline."""
    total = 0
    for func in IMPERATIVE_IMPLEMENTATIONS[name]:
        source = inspect.getsource(func)
        in_docstring = False
        for line in source.splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            if stripped.startswith('"""') or stripped.startswith("'''"):
                if not (stripped.endswith('"""') and len(stripped) > 3) and not (
                    stripped.endswith("'''") and len(stripped) > 3
                ):
                    in_docstring = not in_docstring
                continue
            if in_docstring:
                continue
            total += 1
    return total
