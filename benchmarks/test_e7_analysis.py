"""E7 — diagnostic tasks (§3): root causes, cascading effects, participants."""

import pytest

from repro.analysis import (
    cascading_effects,
    explain_derivation,
    impact_of_link_failure,
    participant_contributions,
    root_causes,
)
from repro.engine import topology
from repro.protocols import path_vector


@pytest.fixture(scope="module")
def diagnosed_network():
    net = topology.random_connected(9, edge_probability=0.35, seed=19)
    runtime = path_vector.setup(net)
    graph = runtime.provenance.build_graph()
    paths = path_vector.best_paths(runtime)
    (source, destination), path = max(paths.items(), key=lambda item: len(item[1]))
    costs = {(s, d): c for (s, d, c) in runtime.state("bestPathCost")}
    target = ["bestPath", [source, destination, path, costs[(source, destination)]]]
    return net, runtime, graph, target, path


def test_root_cause_tracing(benchmark, record, diagnosed_network):
    _net, _runtime, graph, target, path = diagnosed_network
    relation, values = target

    causes = benchmark(root_causes, graph, relation, values)
    explanation = explain_derivation(graph, relation, values, max_depth=3)
    record(
        "E7 root-cause tracing (longest selected path-vector route)",
        f"route of {len(path)} hops",
        root_causes=len(causes),
        all_are_links=all(vertex.relation == "link" for vertex in causes),
        explanation_lines=len(explanation.splitlines()),
    )
    assert len(causes) == len(path) - 1


def test_cascading_effects_of_link_failure(benchmark, record, diagnosed_network):
    net, runtime, graph, _target, path = diagnosed_network
    a, b = path[0], path[1]
    cost = net.cost(a, b)

    # failing the (undirected) link removes both directed link tuples, so the
    # potential impact is the union of both forward closures
    potential = cascading_effects(graph, "link", [a, b, cost]) + cascading_effects(
        graph, "link", [b, a, cost]
    )
    impact = benchmark.pedantic(
        impact_of_link_failure, args=(runtime, a, b), kwargs={"restore": True}, rounds=2, iterations=1
    )
    record(
        "E7 cascading effects of a link failure",
        f"link {a}<->{b}",
        potentially_affected=len({vertex.vid for vertex in potential}),
        actually_removed=impact.removed_count(),
        replacements_derived=impact.added_count(),
    )
    # everything actually removed was predicted as potentially affected
    predicted = {(vertex.relation, vertex.values) for vertex in potential}
    for relation, rows in impact.removed_tuples.items():
        for row in rows:
            assert (relation, row) in predicted


def test_participant_determination(benchmark, record, diagnosed_network):
    _net, _runtime, graph, target, path = diagnosed_network
    relation, values = target

    contributions = benchmark(participant_contributions, graph, relation, values)
    record(
        "E7 participants in a derivation",
        f"route of {len(path)} hops",
        participating_nodes=len(contributions),
        total_rule_executions=sum(entry["rule_executions"] for entry in contributions.values()),
    )
    # every node along the selected path except the destination hosts part of
    # the derivation (the destination only ever receives the announcement)
    assert set(path[:-1]) <= set(contributions)
