"""E20 — observability: disabled-mode overhead and span-tree completeness.

Two claims of the observability layer are pinned here:

* **Part A (overhead)** — on the E19 1010-node ``isp_hierarchy(10, 10, 9)``
  churn profile, a runtime with ``observability=True`` (metrics views,
  per-drain spans, flight-recorder events — the whole subsystem) must stay
  within ``MAX_ENABLED_OVERHEAD`` of the disabled runtime on single-core
  CPU time.  Because the disabled path's *only* added cost is a strict
  subset of the enabled path's (the same ``obs is None`` guard, minus all
  the work behind it), this bound also bounds the disabled-mode guard cost
  the ISSUE's <3% claim is about.  Both modes must converge to the
  identical observable surface — telemetry is invisible to the
  determinism contract.

* **Part B (completeness)** — running the workload subsystem's ``smoke``
  scenario with observability on, the engine-level ``query`` spans must
  reconcile *exactly* with the :class:`MetricsReport`: one root span per
  engine query call, and the span-recorded message/round deltas summing to
  the report's ``query_messages`` / ``query_rounds`` totals.  Every query
  trace must also assemble into a single-rooted tree (no orphaned spans) —
  the invariant that catches a lost trace-context hop anywhere in the
  propagation chain.

Timing methodology (part A): ``time.process_time`` with a ``gc.collect()``
before every timed window (as in E19), fresh runtime pairs per repetition,
one *untimed* warmup window per runtime (JIT-free Python still pays
first-pass allocator and branch-history costs), and — the part that
differs from E19 — both modes' runtimes are **alive simultaneously** with
their timed windows interleaved off/on/off/on inside the pair.  Slow
machine drift (CPU frequency scaling over the multi-second run) then
cancels inside each per-pair ratio instead of polluting a cross-run
min-of-reps comparison; the gate statistic is the median of the per-pair
ratios.
"""

from __future__ import annotations

import statistics
import time

from test_e19_columnar import (
    PREFIX_COUNT,
    SCALE_DIMS,
    build_scale_runtime,
    run_churn_window,
)

#: Paired repetitions (each pair holds one disabled and one enabled
#: runtime; the gate statistic is the median of the per-pair ratios).
REPS = 3

#: Timed windows per mode inside one pair, interleaved off/on/off/on so
#: drift hits both modes of a pair equally.
PAIR_WINDOWS = 2

#: CPU-time ceiling for the fully-enabled subsystem relative to disabled.
#: Measured ~±2% (inside process_time noise) locally; since disabled-mode
#: guard cost is a strict subset of this, the ISSUE's <3% disabled bound
#: follows from the same gate.
MAX_ENABLED_OVERHEAD = 0.03


def run_overhead_ab(reps=REPS, dims=SCALE_DIMS, prefixes=PREFIX_COUNT):
    """Paired observability-off/on churn timing on the E19 profile, plus
    each mode's deterministic surface (which must be identical)."""
    seconds = {False: [], True: []}
    ratios = []
    surfaces = {}
    for _ in range(reps):
        runtimes = {}
        try:
            for enabled in (False, True):
                runtimes[enabled], batch = build_scale_runtime(
                    True, dims, prefixes, observability=enabled
                )
                run_churn_window(runtimes[enabled], batch, rounds=1)  # warmup
            pair = {False: 0.0, True: 0.0}
            for _ in range(PAIR_WINDOWS):
                for enabled in (False, True):
                    pair[enabled] += run_churn_window(runtimes[enabled], batch)
            for enabled in (False, True):
                seconds[enabled].append(pair[enabled])
                surfaces[enabled] = {
                    "messages": runtimes[enabled].message_stats().messages,
                    "events": runtimes[enabled].simulator.processed_events,
                    "rounds": runtimes[enabled].simulator.rounds,
                }
            ratios.append(pair[True] / pair[False])
        finally:
            for runtime in runtimes.values():
                runtime.close()
    return {
        "disabled_min": min(seconds[False]),
        "enabled_min": min(seconds[True]),
        "disabled_median": statistics.median(seconds[False]),
        "enabled_median": statistics.median(seconds[True]),
        "overhead": statistics.median(ratios) - 1.0,
        "disabled_surface": surfaces[False],
        "enabled_surface": surfaces[True],
    }


def run_completeness(backend="serial"):
    """The smoke scenario with observability on; returns the report, the
    query-span reconciliation sums and the per-trace tree check."""
    from repro.workloads.driver import ScenarioDriver
    from repro.workloads.profiles import smoke

    spec = smoke().with_knobs(observability=True, backend=backend)
    start = time.perf_counter()
    with ScenarioDriver(spec) as driver:
        report = driver.run()
        seconds = time.perf_counter() - start
        tracer = driver.runtime.obs.tracer
        roots = tracer.finished_spans(name="query")
        trees = [tracer.span_tree(span.trace_id) for span in roots]
        total_spans = len(tracer.finished_spans())
    totals = report.totals()
    return {
        "report": report,
        "totals": totals,
        "seconds": seconds,
        "query_roots": len(roots),
        "span_queries": sum(span.attrs["n_roots"] for span in roots),
        "span_messages": sum(span.attrs["messages"] for span in roots),
        "span_rounds": sum(span.attrs["rounds"] for span in roots),
        "trees": len(trees),
        "total_spans": total_spans,
    }


def completeness_violations(result):
    """The reconciliation failures (empty list = the invariant holds)."""
    totals = result["totals"]
    violations = []
    for span_key, report_key in (
        ("span_queries", "queries"),
        ("span_messages", "query_messages"),
        ("span_rounds", "query_rounds"),
    ):
        if result[span_key] != totals[report_key]:
            violations.append(
                f"{report_key}: spans say {result[span_key]}, "
                f"MetricsReport says {totals[report_key]}"
            )
    return violations


def test_observability_overhead_is_bounded(record):
    result = run_overhead_ab()

    # The acceptance invariant: telemetry never touches the deterministic
    # surface — message/event/round counts match with the subsystem on.
    assert result["enabled_surface"] == result["disabled_surface"], (
        "observability changed the observable surface: "
        f"{result['enabled_surface']} vs {result['disabled_surface']}"
    )

    assert result["overhead"] <= MAX_ENABLED_OVERHEAD, (
        f"observability overhead reached {result['overhead']:.1%} "
        f"(disabled median={result['disabled_median']:.3f}s "
        f"enabled median={result['enabled_median']:.3f}s, "
        f"ceiling {MAX_ENABLED_OVERHEAD:.0%})"
    )

    experiment = "E20 observability overhead (PREFIX_ROUTING churn, 1010-node hierarchy)"
    record(
        experiment,
        "observability disabled",
        cpu_seconds_min=round(result["disabled_min"], 3),
        cpu_seconds_median=round(result["disabled_median"], 3),
        messages=result["disabled_surface"]["messages"],
    )
    record(
        experiment,
        "observability enabled (spans + metrics + recorder)",
        cpu_seconds_min=round(result["enabled_min"], 3),
        cpu_seconds_median=round(result["enabled_median"], 3),
        overhead=f"{result['overhead']:+.1%}",
    )


def test_query_spans_reconcile_with_metrics_report(record):
    result = run_completeness()
    violations = completeness_violations(result)
    assert not violations, (
        "E20 span-completeness invariant violated: " + "; ".join(violations)
    )
    assert result["query_roots"] > 0

    record(
        "E20 span-tree completeness (smoke scenario)",
        "query spans vs MetricsReport",
        query_roots=result["query_roots"],
        queries=result["totals"]["queries"],
        query_messages=result["totals"]["query_messages"],
        query_rounds=result["totals"]["query_rounds"],
        total_spans=result["total_spans"],
        seconds=round(result["seconds"], 3),
    )
