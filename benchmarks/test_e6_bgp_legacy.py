"""E6 — the legacy application use case: Quagga/BGP via the proxy (use case 2).

Replays a synthetic RouteViews-style trace over a hierarchical AS topology,
measures the cost of capturing provenance through the proxy and the "maybe"
rules, and queries the derivation history / origin of routing entries.
"""

import pytest

from repro.legacy.quagga import QuaggaDeployment
from repro.legacy.routeviews import generate_trace


@pytest.fixture(scope="module")
def converged_deployment():
    deployment = QuaggaDeployment(tier1_count=3, tier2_per_tier1=2, stubs_per_tier2=1, seed=2)
    deployment.play_generated_trace(prefixes_per_stub=1, flap_probability=0.3, seed=5)
    return deployment


def test_trace_replay_and_capture(benchmark, record):
    def replay():
        deployment = QuaggaDeployment(tier1_count=2, tier2_per_tier1=2, stubs_per_tier2=1, seed=2)
        deployment.play_generated_trace(prefixes_per_stub=1, flap_probability=0.3, seed=5)
        return deployment

    deployment = benchmark.pedantic(replay, rounds=2, iterations=1)
    stats = deployment.proxy.stats
    record(
        "E6 trace replay through the proxy",
        f"{deployment.as_topology.as_count()} ASes, {len(deployment.events_played)} trace events",
        bgp_updates=deployment.bgp.stats.updates_sent,
        outputs_explained_by_br1=stats.outputs_explained,
        originations=stats.outputs_unexplained,
        route_entries=stats.route_entries_recorded,
        prov_rows=deployment.provenance.table_sizes()["prov"],
        rule_exec_rows=deployment.provenance.table_sizes()["ruleExec"],
    )
    # every non-origination advertisement must be explained by the maybe rule
    assert stats.outputs_explained + stats.outputs_unexplained == stats.outputs_recorded


def test_route_entry_derivation_queries(benchmark, record, converged_deployment):
    deployment = converged_deployment
    # find a prefix that is still announced and the AS farthest from its origin
    target = None
    for event in deployment.events_played:
        entries = deployment.route_entries(event.prefix)
        if entries:
            far = max(entries, key=lambda asn: len(entries[asn]))
            target = (far, event.prefix, event.asn, len(entries[far]))
    assert target is not None
    far, prefix, origin, path_length = target

    result = benchmark(deployment.derivation_of_route, far, prefix)
    participants = deployment.participants_of_route(far, prefix)
    record(
        "E6 derivation history of a routing entry",
        f"AS {far}, AS-path length {path_length}",
        origin_as=origin,
        lineage_size=len(result.value),
        participants=len(participants.value),
        query_messages=result.stats.messages,
        nodes_visited=result.stats.nodes_visited,
    )
    assert {ref.location for ref in result.value} == {f"as{origin}"}
    assert len(participants.value) == path_length + 1 or len(participants.value) == path_length
