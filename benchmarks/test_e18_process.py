"""E18 — process-pool backend: true multi-core drains with commit stalls.

The same 3-hub AS hierarchy and link-flap churn as E13, but run against
:class:`~repro.engine.backends.ProcessPoolBackend`: logical nodes are pinned
to forked worker processes by a stable seeded assignment, each wave's drains
execute in the owning workers, and the coordinator replays the returned drain
traces to keep authoritative state — so the *entire* observable surface
(message counts, simulator events/rounds, converged state, provenance
versions *and* the canonical provenance fingerprint) must stay bit-identical
across serial, thread, asyncio and process backends.

The default profile models a durable deployment's per-batch commit latency
(``batch_commit_stall_s``, an fsync-like blocking stall).  Workers pay the
stall while the coordinator's wave threads merely block on the reply pipes,
so distinct nodes' stalls overlap across processes even on a single CPU —
this is what the ≥1.8x gate at four workers measures.  The opt-in
``NETTRAILS_SCALE_BENCH=1`` leg drops the stall entirely and requires at
least two CPU cores: with no I/O to hide, any speedup there can only come
from evaluator *compute* escaping the GIL, the claim thread/asyncio backends
cannot make.
"""

import os
import time

import pytest

from repro.engine import topology
from repro.engine.runtime import NetTrailsRuntime
from repro.protocols import mincost

#: Emulated per-batch commit latency (seconds).  Stall-dominated on purpose:
#: at 6 ms the serial run spends most of its wall clock sleeping, so worker
#: overlap shows through scheduling noise (observed ~2.0x at 4 workers with a
#: 5 ms stall; 6 ms buys margin over the 1.8x gate on shared runners).
COMMIT_STALL_S = 0.006

#: Worker counts swept by the speedup test; 4 carries the headline gate.
WORKER_COUNTS = (1, 2, 4)

EXTENDED = os.environ.get("NETTRAILS_SCALE_BENCH", "").strip().lower() in (
    "1",
    "true",
    "yes",
    "on",
)


def provenance_fingerprint(runtime):
    """Canonical distributed provenance tables (same shape as the property
    suite's fixture — duplicated here because benchmarks don't import the
    test-tree conftest)."""
    rows = set()
    provenance = runtime.provenance
    for node_id in runtime.node_ids():
        store = provenance.store(node_id)
        for row in store.prov_table():
            rows.add(("prov",) + row)
        for loc, rid, rule, program, children in store.rule_exec_table():
            rows.add(("ruleExec", loc, rid, rule, program, tuple(children)))
    return rows


def run_scale_churn(backend, workers=4, stall=COMMIT_STALL_S, dims=(3, 2, 1)):
    """Seed MINCOST on an AS hierarchy, flap one link per tier-1 hub; return
    the full observable surface plus wall-clock seconds."""
    net = topology.isp_hierarchy(*dims, seed=7)
    start = time.perf_counter()
    with NetTrailsRuntime(
        mincost.program(),
        net,
        backend=backend,
        backend_workers=workers,
        batch_commit_stall_s=stall,
    ) as runtime:
        runtime.seed_links(run=True)
        hubs = [node for node in runtime.node_ids() if str(node).startswith("t1_")]
        links = [(hub, runtime.topology.neighbors(hub)[0]) for hub in hubs]
        for source, target in links:
            runtime.remove_link(source, target)
        runtime.run_to_quiescence()
        for source, target in links:
            runtime.add_link(source, target, 1.0)
        runtime.run_to_quiescence()
        return {
            "seconds": time.perf_counter() - start,
            "messages": runtime.message_stats().messages,
            "events": runtime.simulator.processed_events,
            "rounds": runtime.simulator.rounds,
            "deltas": sum(node.stats.deltas_sent for node in runtime.nodes.values()),
            "state": {
                relation: runtime.state(relation)
                for relation in ("link", "path", "minCost")
            },
            "versions": runtime.provenance.versions(),
            "fingerprint": provenance_fingerprint(runtime),
            "batches": sum(
                node.stats.batches_processed for node in runtime.nodes.values()
            ),
        }


def assert_identical_surface(variant, serial, label):
    """Concurrency must be invisible to everything but the clock."""
    for key in (
        "messages",
        "events",
        "rounds",
        "deltas",
        "state",
        "versions",
        "fingerprint",
        "batches",
    ):
        assert variant[key] == serial[key], f"{label}: {key} diverged from serial"


def test_process_backend_speedup_with_identical_surface(benchmark, record):
    serial = run_scale_churn("serial")
    thread = run_scale_churn("thread")
    asyncio_run = run_scale_churn("asyncio")
    process = {
        workers: run_scale_churn("process", workers=workers)
        for workers in WORKER_COUNTS
        if workers != 4
    }
    process[4] = benchmark.pedantic(
        lambda: run_scale_churn("process", workers=4), rounds=2, iterations=1
    )

    # The acceptance invariant: all four backends — and every process worker
    # count — produce the same wire traffic, events, converged state and
    # provenance fingerprint, bit for bit.
    assert_identical_surface(thread, serial, "thread")
    assert_identical_surface(asyncio_run, serial, "asyncio")
    for workers, variant in process.items():
        assert_identical_surface(variant, serial, f"process w={workers}")

    # The headline gate: 4 forked workers must beat serial by >= 1.8x on the
    # stall-dominated profile (observed ~2.0x locally).
    assert process[4]["seconds"] < serial["seconds"] / 1.8, (
        f"ProcessPoolBackend did not overlap commit stalls: "
        f"serial={serial['seconds']:.2f}s process4={process[4]['seconds']:.2f}s"
    )

    experiment = "E18 process-pool backend (MINCOST 3-hub AS hierarchy, 6ms commit stall)"
    record(
        experiment,
        "serial reference",
        messages=serial["messages"],
        events=serial["events"],
        batches=serial["batches"],
        seconds=round(serial["seconds"], 3),
    )
    for label, variant in (
        ("thread backend, 4 workers", thread),
        ("asyncio backend, 4 workers", asyncio_run),
    ):
        record(
            experiment,
            label,
            messages=variant["messages"],
            events=variant["events"],
            batches=variant["batches"],
            seconds=round(variant["seconds"], 3),
            speedup=round(serial["seconds"] / variant["seconds"], 2),
        )
    for workers in WORKER_COUNTS:
        variant = process[workers]
        record(
            experiment,
            f"process backend, {workers} worker{'s' if workers > 1 else ''}",
            messages=variant["messages"],
            events=variant["events"],
            batches=variant["batches"],
            seconds=round(variant["seconds"], 3),
            speedup=round(serial["seconds"] / variant["seconds"], 2),
        )


@pytest.mark.skipif(not EXTENDED, reason="opt-in: set NETTRAILS_SCALE_BENCH=1")
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="compute-bound scaling needs >= 2 CPU cores",
)
def test_true_multicore_compute_scaling(record):
    """The workflow_dispatch big run: no commit stall at all, a larger
    hierarchy, and the speedup must come purely from evaluator compute
    running on multiple cores.  The bound is deliberately loose (any
    sustained win over serial) because pickle/mirror overhead eats into the
    gain at small scales; the bit-identical surface stays a hard assert."""
    serial = run_scale_churn("serial", stall=0.0, dims=(4, 3, 2))
    process = run_scale_churn("process", workers=4, stall=0.0, dims=(4, 3, 2))
    assert_identical_surface(process, serial, "process w=4 (compute-bound)")
    assert process["seconds"] < serial["seconds"], (
        f"no multi-core compute win: serial={serial['seconds']:.2f}s "
        f"process4={process['seconds']:.2f}s"
    )
    record(
        "E18x compute-bound multi-core scaling (no stall, 4-3-2 hierarchy)",
        "process backend, 4 workers vs serial",
        serial_seconds=round(serial["seconds"], 3),
        process_seconds=round(process["seconds"], 3),
        speedup=round(serial["seconds"] / process["seconds"], 2),
    )
