"""E13 — concurrent execution backends: multi-hub drain overlap.

A hierarchical AS topology (three tier-1 hubs in a full mesh, each serving
tier-2 customers and stubs) spreads every churn wave across *many* nodes:
after a tier-1 link flap, the delta batches fan out through the hierarchy and
most simulator waves contain drains of several distinct nodes.

The run models the per-batch commit latency a durable deployment pays
(``batch_commit_stall_s`` — an fsync-like blocking stall that releases the
GIL exactly like real I/O).  The serial reference backend pays the stalls one
after another; :class:`~repro.engine.backends.ThreadPoolBackend` and
:class:`~repro.engine.backends.AsyncioBackend` overlap the stalls of distinct
nodes within each wave, so wall-clock time drops while — this is the
headline assertion — the message counts, simulator event/round counts,
converged protocol state and provenance versions stay *identical* to serial.
"""

import time

from repro.engine import topology
from repro.engine.runtime import NetTrailsRuntime
from repro.protocols import mincost

#: Emulated per-batch commit latency (seconds).  Large enough that drain
#: overlap dominates scheduling noise, small enough to keep the benchmark
#: fast; the speedup assertion holds with wide margin (observed ~1.9x).
COMMIT_STALL_S = 0.001
BACKEND_WORKERS = 4


def run_multi_hub_churn(backend, workers=BACKEND_WORKERS):
    """Seed MINCOST on a 3-hub AS hierarchy, flap one link per hub; return metrics."""
    net = topology.isp_hierarchy(3, 2, 1, seed=7)
    start = time.perf_counter()
    with NetTrailsRuntime(
        mincost.program(),
        net,
        backend=backend,
        backend_workers=workers,
        batch_commit_stall_s=COMMIT_STALL_S,
    ) as runtime:
        runtime.seed_links(run=True)
        hubs = [node for node in runtime.node_ids() if str(node).startswith("t1_")]
        links = [(hub, runtime.topology.neighbors(hub)[0]) for hub in hubs]
        for source, target in links:
            runtime.remove_link(source, target)
        runtime.run_to_quiescence()
        for source, target in links:
            runtime.add_link(source, target, 1.0)
        runtime.run_to_quiescence()
        return {
            "seconds": time.perf_counter() - start,
            "messages": runtime.message_stats().messages,
            "events": runtime.simulator.processed_events,
            "rounds": runtime.simulator.rounds,
            "state": {
                relation: runtime.state(relation)
                for relation in ("link", "path", "minCost")
            },
            "versions": runtime.provenance.versions(),
            "batches": sum(
                node.stats.batches_processed for node in runtime.nodes.values()
            ),
        }


def test_thread_backend_speedup_with_identical_counts(benchmark, record):
    serial = run_multi_hub_churn("serial")

    threaded = benchmark.pedantic(
        lambda: run_multi_hub_churn("thread"), rounds=2, iterations=1
    )
    asyncio_run = run_multi_hub_churn("asyncio")

    for variant, label in ((threaded, "thread"), (asyncio_run, "asyncio")):
        # Concurrency must be invisible to everything but the clock: same
        # wire traffic, same simulator events and rounds, same converged
        # state, same provenance versioning.
        assert variant["messages"] == serial["messages"], label
        assert variant["events"] == serial["events"], label
        assert variant["rounds"] == serial["rounds"], label
        assert variant["state"] == serial["state"], label
        assert variant["versions"] == serial["versions"], label
        assert variant["batches"] == serial["batches"], label

    # The headline speedup claim.  Observed ~1.9x locally; 0.8 leaves room
    # for noisy CI runners while still requiring genuine overlap.
    assert threaded["seconds"] < serial["seconds"] * 0.8, (
        f"ThreadPoolBackend did not overlap commit stalls: "
        f"serial={serial['seconds']:.2f}s threaded={threaded['seconds']:.2f}s"
    )

    record(
        "E13 concurrent node-drain backends (MINCOST 3-hub AS hierarchy)",
        "serial reference",
        messages=serial["messages"],
        events=serial["events"],
        rounds=serial["rounds"],
        batches=serial["batches"],
        seconds=round(serial["seconds"], 3),
    )
    for variant, label in ((threaded, "thread backend, 4 workers"), (asyncio_run, "asyncio backend, 4 workers")):
        record(
            "E13 concurrent node-drain backends (MINCOST 3-hub AS hierarchy)",
            label,
            messages=variant["messages"],
            events=variant["events"],
            rounds=variant["rounds"],
            batches=variant["batches"],
            seconds=round(variant["seconds"], 3),
            speedup=round(serial["seconds"] / variant["seconds"], 2),
        )
