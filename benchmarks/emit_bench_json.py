"""Emit the benchmark-trajectory JSON consumed by the CI perf gate.

Runs compact, deterministic versions of the headline experiments —

* **E11** batch-first delta evaluation (batched vs per-fact churn),
* **E12** sharded hub absorption (4 shards vs flat on a star hub),
* **E13** concurrent node-drain backends (thread/asyncio vs serial on a
  multi-hub AS hierarchy),
* **E14** per-VID query-cache invalidation (cache hit/miss/eviction counters
  under unrelated churn, vs the global-version ablation),
* **E15** the workload subsystem's ``smoke`` scenario profile (seeded churn
  generators + Zipf query waves through the scenario driver; the 1000+-node
  ``scale`` profile stays in the opt-in ``workflow_dispatch`` CI run),
* **E16** interval-indexed provenance queries (batched interval waves vs
  the per-query reference traversal on the compact AS hierarchy; the
  10x-at-1010-nodes claim stays in ``test_e16_interval.py``),
* **E17** durability (WAL overhead vs a plain runtime, genesis and
  checkpoint recovery of a crashed history, concurrent-client serving
  latency percentiles; the every-kill-point oracle stays in
  ``tests/property/test_property_recovery.py``),
* **E18** the process-pool backend (forked-worker drains at 1/2/4 workers
  vs serial on the stall-dominated E13 profile; the ≥1.8x speedup gate and
  the compute-bound multicore leg stay in ``test_e18_process.py``),
* **E19** the columnar join core (interned columnar store + compiled batch
  join vs the dict-of-sets reference on a compact hierarchy, and the
  process backend's delta-encoded drain traces vs raw pickling; the
  ≥1.25x single-core gate on the 1010-node scale profile stays in
  ``test_e19_columnar.py``),
* **E20** the observability layer (paired off/on churn timing on a compact
  hierarchy with the surface-identity invariant, plus the span-tree
  completeness reconciliation against the smoke scenario's MetricsReport;
  the <3% overhead gate on the 1010-node scale profile stays in
  ``test_e20_observability.py``) —

and writes one flat JSON document of named metrics (message counts,
simulator events, rounds, wall-clock seconds).  The CI ``bench-trajectory``
job uploads the document as a build artifact, which makes the performance
trajectory of the repository inspectable per commit, and gates merges by
comparing against the committed baseline:

    python benchmarks/emit_bench_json.py --out BENCH_${GITHUB_RUN_ID}.json \
        --check benchmarks/bench_baseline.json

A *gated* metric fails the check when it regresses by more than the
tolerance (default 20%).  Count metrics (messages / events / rounds) are
gated: the engine is deterministic, so any drift is a real behavioural
change.  Wall-clock metrics are recorded for the artifact trail but not
gated — shared CI runners are too noisy for absolute-time gates; the
relative speedup assertions live in the pytest benchmarks (e.g. E13's
thread-vs-serial bound), which the same CI job runs first.

Refresh the baseline after an intentional perf-trajectory change with:

    python benchmarks/emit_bench_json.py --out benchmarks/bench_baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from test_e11_batching import run_churn  # noqa: E402
from test_e12_sharding import HUB, run_hub_churn  # noqa: E402
from test_e13_backends import run_multi_hub_churn  # noqa: E402
from test_e14_cache import run_cache_workload, run_capped_workload  # noqa: E402
from test_e15_scale import run_smoke_profile  # noqa: E402
from test_e16_interval import COMPACT_DIMS, run_deep_lineage  # noqa: E402
from test_e17_durability import (  # noqa: E402
    run_concurrent_serving,
    run_recovery_benchmark,
    run_wal_overhead,
)
from test_e18_process import WORKER_COUNTS, run_scale_churn  # noqa: E402
from test_e19_columnar import bytes_per_drain, run_columnar_ratio, run_trace_bytes  # noqa: E402
from test_e20_observability import (  # noqa: E402
    completeness_violations,
    run_completeness,
    run_overhead_ab,
)

#: Metrics whose names end with one of these suffixes are wall-clock and
#: therefore recorded but never gated.
UNGATED_SUFFIXES = (".seconds",)


def _metric(value, gate=True, higher_is_better=False):
    """One named metric.  ``gate=True`` enforces the regression check;
    ``higher_is_better=True`` flips its direction (e.g. cache hits, where a
    *drop* is the regression and an increase is the improvement)."""
    entry = {"value": value, "gate": gate}
    if higher_is_better:
        entry["higher_is_better"] = True
    return entry


def collect_metrics() -> dict:
    """Run the trajectory workloads; return {metric_name: {value, gate}}."""
    metrics = {}

    # E11 — batch-first churn absorption, batched vs per-fact reference.
    start = time.perf_counter()
    batched, deltas = run_churn(batch_deltas=True)
    batched_seconds = time.perf_counter() - start
    start = time.perf_counter()
    per_fact, _ = run_churn(batch_deltas=False)
    per_fact_seconds = time.perf_counter() - start
    metrics["e11.deltas"] = _metric(deltas)
    metrics["e11.batched.messages"] = _metric(batched.message_stats().messages)
    metrics["e11.batched.events"] = _metric(batched.simulator.processed_events)
    metrics["e11.batched.rounds"] = _metric(batched.simulator.rounds)
    metrics["e11.batched.seconds"] = _metric(round(batched_seconds, 3), gate=False)
    metrics["e11.per_fact.messages"] = _metric(per_fact.message_stats().messages)
    metrics["e11.per_fact.events"] = _metric(per_fact.simulator.processed_events)
    metrics["e11.per_fact.seconds"] = _metric(round(per_fact_seconds, 3), gate=False)

    # E12 — sharded hub absorption: sharding must stay invisible on the wire.
    start = time.perf_counter()
    with run_hub_churn(num_shards=4, shard_workers=2) as sharded:
        sharded_seconds = time.perf_counter() - start
        metrics["e12.sharded.messages"] = _metric(sharded.message_stats().messages)
        metrics["e12.sharded.events"] = _metric(sharded.simulator.processed_events)
        metrics["e12.sharded.hub_batches"] = _metric(
            sharded.nodes[HUB].stats.batches_processed
        )
        metrics["e12.sharded.seconds"] = _metric(round(sharded_seconds, 3), gate=False)

    # E13 — concurrent node-drain backends on the multi-hub AS hierarchy.
    serial = run_multi_hub_churn("serial")
    threaded = run_multi_hub_churn("thread")
    metrics["e13.messages"] = _metric(serial["messages"])
    metrics["e13.events"] = _metric(serial["events"])
    metrics["e13.rounds"] = _metric(serial["rounds"])
    metrics["e13.serial.seconds"] = _metric(round(serial["seconds"], 3), gate=False)
    metrics["e13.thread.seconds"] = _metric(round(threaded["seconds"], 3), gate=False)
    metrics["e13.thread.speedup"] = _metric(
        round(serial["seconds"] / threaded["seconds"], 2), gate=False
    )
    if threaded["messages"] != serial["messages"] or threaded["events"] != serial["events"]:
        raise SystemExit(
            "E13 invariant violated: thread backend message/event counts "
            f"differ from serial ({threaded['messages']}/{threaded['events']} "
            f"vs {serial['messages']}/{serial['events']})"
        )

    # E14 — per-VID cache invalidation under unrelated churn, vs the
    # global-version ablation.  Counters are deterministic and gated; the
    # hit rate is derived (recorded for the artifact trail only).
    start = time.perf_counter()
    per_vid = run_cache_workload()
    per_vid_seconds = time.perf_counter() - start
    coarse = run_cache_workload(cache_validation="global")
    capped = run_capped_workload().cache_totals()
    metrics["e14.pervid.hits"] = _metric(per_vid["totals"]["hits"], higher_is_better=True)
    metrics["e14.pervid.misses"] = _metric(per_vid["totals"]["misses"])
    metrics["e14.pervid.churn_step_hits"] = _metric(
        sum(per_vid["per_step_hits"]), higher_is_better=True
    )
    metrics["e14.pervid.churn_step_messages"] = _metric(sum(per_vid["per_step_messages"]))
    metrics["e14.pervid.hit_rate"] = _metric(per_vid["hit_rate"], gate=False)
    metrics["e14.pervid.seconds"] = _metric(round(per_vid_seconds, 3), gate=False)
    metrics["e14.global.churn_step_hits"] = _metric(
        sum(coarse["per_step_hits"]), gate=False
    )
    metrics["e14.capped.evictions"] = _metric(capped["evictions"])
    metrics["e14.capped.entries"] = _metric(capped["entries"])
    if sum(per_vid["per_step_hits"]) <= sum(coarse["per_step_hits"]):
        raise SystemExit(
            "E14 invariant violated: per-VID validation no longer beats the "
            f"global ablation ({sum(per_vid['per_step_hits'])} hits vs "
            f"{sum(coarse['per_step_hits'])})"
        )

    # E15 — the workload subsystem's smoke scenario (seeded churn generators
    # interleaved with Zipf-skewed query waves).  The engine is
    # deterministic, so every counter of the report is gated; wall-clock is
    # recorded only.  The serial run is the gate; a thread-backend run must
    # reproduce the counters bit for bit (the determinism contract).
    smoke = run_smoke_profile(backend="serial")
    totals = smoke.totals()
    metrics["e15.smoke.deltas"] = _metric(totals["deltas"])
    metrics["e15.smoke.messages"] = _metric(totals["messages"])
    metrics["e15.smoke.events"] = _metric(totals["events"])
    metrics["e15.smoke.rounds"] = _metric(totals["rounds"])
    metrics["e15.smoke.queries"] = _metric(totals["queries"])
    metrics["e15.smoke.query_messages"] = _metric(totals["query_messages"])
    metrics["e15.smoke.cache_hits"] = _metric(
        smoke.cache.get("hits", 0), higher_is_better=True
    )
    metrics["e15.smoke.seconds"] = _metric(round(smoke.seconds, 3), gate=False)
    threaded_smoke = run_smoke_profile(backend="thread")
    if threaded_smoke.deterministic_view() != smoke.deterministic_view():
        raise SystemExit(
            "E15 invariant violated: thread-backend smoke metrics diverge "
            "from the serial reference"
        )

    # E16 — interval-indexed queries vs reference traversal on the compact
    # AS hierarchy.  Message counts are deterministic and gated; the ratio
    # is gated in the healthier-is-higher direction.  Two hard invariants:
    # the interval path must return bit-identical answers, and a batched
    # interval wave must never cost more messages than the traversal.
    start = time.perf_counter()
    deep = run_deep_lineage(dims=COMPACT_DIMS)
    deep_seconds = time.perf_counter() - start
    metrics["e16.traversal_messages"] = _metric(deep["traversal_messages"])
    metrics["e16.interval_messages"] = _metric(deep["interval_messages"])
    metrics["e16.messages_ratio"] = _metric(
        round(deep["ratio"], 2), higher_is_better=True
    )
    metrics["e16.range_scans"] = _metric(
        deep["interval_totals"]["range_scans"], gate=False
    )
    metrics["e16.seconds"] = _metric(round(deep_seconds, 3), gate=False)
    if not deep["identical"]:
        raise SystemExit(
            "E16 invariant violated: interval answers diverge from the "
            "reference traversal"
        )
    if deep["interval_messages"] > deep["traversal_messages"]:
        raise SystemExit(
            "E16 invariant violated: interval wave costs more messages than "
            f"the traversal ({deep['interval_messages']} vs "
            f"{deep['traversal_messages']})"
        )

    # E17 — durability.  WAL shape and replay counts are deterministic and
    # gated; every wall-clock figure (overhead ratio, recovery seconds,
    # latency percentiles) is recorded ungated.  Three hard invariants: the
    # journal is invisible on the wire, the no-fsync message-path overhead
    # stays under 2.5x, and both recovery modes reproduce the uncrashed
    # state bit-identically.
    scratch = tempfile.mkdtemp(prefix="nettrails-e17-")
    try:
        overhead = run_wal_overhead(durable_dir=os.path.join(scratch, "overhead"))
        recovery = run_recovery_benchmark(os.path.join(scratch, "recovery"))
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    serving = run_concurrent_serving()
    metrics["e17.wal.records"] = _metric(overhead["wal_records"])
    metrics["e17.wal.ops"] = _metric(overhead["wal_ops"])
    metrics["e17.wal.bytes"] = _metric(overhead["wal_bytes"])
    metrics["e17.overhead_ratio"] = _metric(
        round(overhead["overhead_ratio"], 2), gate=False
    )
    metrics["e17.plain.seconds"] = _metric(
        round(overhead["plain"]["seconds"], 3), gate=False
    )
    metrics["e17.durable.seconds"] = _metric(
        round(overhead["durable"]["seconds"], 3), gate=False
    )
    metrics["e17.recovery.genesis_batches"] = _metric(recovery["batches"]["genesis"])
    metrics["e17.recovery.checkpoint_batches"] = _metric(
        recovery["batches"]["checkpoint"]
    )
    metrics["e17.recovery.genesis.seconds"] = _metric(
        round(recovery["metrics"]["genesis_seconds"], 3), gate=False
    )
    metrics["e17.recovery.checkpoint.seconds"] = _metric(
        round(recovery["metrics"]["checkpoint_seconds"], 3), gate=False
    )
    metrics["e17.clients.queries"] = _metric(serving["report"].issued)
    metrics["e17.clients.commits"] = _metric(serving["report"].commits)
    for percentile in ("p50", "p95", "p99"):
        metrics[f"e17.clients.query_{percentile}"] = _metric(
            serving["latency"][f"query_{percentile}"], gate=False
        )
    if overhead["durable"]["messages"] != overhead["plain"]["messages"]:
        raise SystemExit(
            "E17 invariant violated: journalling changed the wire traffic "
            f"({overhead['durable']['messages']} durable vs "
            f"{overhead['plain']['messages']} plain messages)"
        )
    if overhead["overhead_ratio"] >= 2.5:
        raise SystemExit(
            "E17 invariant violated: no-fsync durable overhead reached "
            f"{overhead['overhead_ratio']:.2f}x (bound: 2.5x)"
        )
    if not recovery["identical"]:
        raise SystemExit(
            "E17 invariant violated: a recovered runtime diverged from the "
            "uncrashed twin"
        )

    # E18 — process-pool backend on the stall-dominated churn profile.
    # Counts are deterministic and gated once (from the serial reference);
    # the hard invariant is that every forked-worker run reproduces the
    # serial surface — wire traffic, events, converged state, provenance
    # versions and the canonical fingerprint — bit for bit.  Wall clock and
    # the derived speedups are recorded ungated (the pytest gate enforces
    # the ≥1.8x bound at 4 workers before this script runs in CI).
    e18_serial = run_scale_churn("serial")
    metrics["e18.messages"] = _metric(e18_serial["messages"])
    metrics["e18.events"] = _metric(e18_serial["events"])
    metrics["e18.rounds"] = _metric(e18_serial["rounds"])
    metrics["e18.deltas"] = _metric(e18_serial["deltas"])
    metrics["e18.batches"] = _metric(e18_serial["batches"])
    metrics["e18.serial.seconds"] = _metric(round(e18_serial["seconds"], 3), gate=False)
    for workers in WORKER_COUNTS:
        run = run_scale_churn("process", workers=workers)
        for key in ("messages", "events", "rounds", "deltas", "state", "versions", "fingerprint", "batches"):
            if run[key] != e18_serial[key]:
                raise SystemExit(
                    f"E18 invariant violated: process backend ({workers} "
                    f"workers) diverged from serial on {key}"
                )
        metrics[f"e18.process_w{workers}.seconds"] = _metric(
            round(run["seconds"], 3), gate=False
        )
        metrics[f"e18.process_w{workers}.speedup"] = _metric(
            round(e18_serial["seconds"] / run["seconds"], 2), gate=False
        )

    # E19 — columnar join core + delta-encoded drain traces.  Part A runs
    # the churn profile on a compact hierarchy (the 1010-node scale gate
    # stays in the pytest benchmark): counters are deterministic and gated,
    # with the hard invariant that columnar and dict modes converge to the
    # identical observable surface; CPU seconds and the speedup are recorded
    # ungated.  Part B gates the drain count (deterministic — one trace per
    # remote drain whatever the encoding) and records byte totals ungated:
    # envelope packing depends on which wave threads coalesce, so byte
    # counts wobble a little run to run.  The reduction invariant uses a
    # wider margin than the pytest gate for the same reason.
    e19 = run_columnar_ratio(reps=2, dims=(4, 4, 4), prefixes=16)
    if e19["columnar_surface"] != e19["dict_surface"]:
        raise SystemExit(
            "E19 invariant violated: columnar mode changed the observable "
            f"surface ({e19['columnar_surface']} vs {e19['dict_surface']})"
        )
    metrics["e19.messages"] = _metric(e19["dict_surface"]["messages"])
    metrics["e19.events"] = _metric(e19["dict_surface"]["events"])
    metrics["e19.rounds"] = _metric(e19["dict_surface"]["rounds"])
    metrics["e19.dict.cpu_seconds"] = _metric(round(e19["dict_min"], 3), gate=False)
    metrics["e19.columnar.cpu_seconds"] = _metric(
        round(e19["columnar_min"], 3), gate=False
    )
    metrics["e19.columnar.speedup"] = _metric(
        round(e19["min_speedup"], 2), gate=False
    )
    delta_stats, delta_snapshot = run_trace_bytes(trace_delta=True)
    raw_stats, raw_snapshot = run_trace_bytes(trace_delta=False)
    if delta_snapshot != raw_snapshot:
        raise SystemExit(
            "E19 invariant violated: trace_delta changed the converged snapshot"
        )
    reduction = 1.0 - bytes_per_drain(delta_stats) / bytes_per_drain(raw_stats)
    if reduction < 0.25:
        raise SystemExit(
            "E19 invariant violated: delta-encoded traces save only "
            f"{reduction:.1%} bytes per drain (floor: 25%)"
        )
    metrics["e19.trace.drains"] = _metric(delta_stats["drains"])
    metrics["e19.trace.delta_bytes_per_drain"] = _metric(
        round(bytes_per_drain(delta_stats), 1), gate=False
    )
    metrics["e19.trace.raw_bytes_per_drain"] = _metric(
        round(bytes_per_drain(raw_stats), 1), gate=False
    )
    metrics["e19.trace.reduction"] = _metric(round(reduction, 3), gate=False)

    # E20 — observability.  Part A pairs off/on churn runs on a compact
    # hierarchy (the 1010-node <3% gate stays in the pytest benchmark): the
    # hard invariant is surface identity — telemetry must not perturb one
    # message, event or round — and the CPU seconds / overhead ratio are
    # recorded ungated.  Part B re-runs the smoke scenario with the
    # subsystem on and hard-fails unless the engine-level query spans
    # reconcile exactly with the MetricsReport totals (and every query
    # trace assembles into a single-rooted tree).
    e20 = run_overhead_ab(reps=2, dims=(4, 4, 4), prefixes=16)
    if e20["enabled_surface"] != e20["disabled_surface"]:
        raise SystemExit(
            "E20 invariant violated: observability changed the observable "
            f"surface ({e20['enabled_surface']} vs {e20['disabled_surface']})"
        )
    metrics["e20.messages"] = _metric(e20["disabled_surface"]["messages"])
    metrics["e20.events"] = _metric(e20["disabled_surface"]["events"])
    metrics["e20.rounds"] = _metric(e20["disabled_surface"]["rounds"])
    metrics["e20.disabled.cpu_seconds"] = _metric(
        round(e20["disabled_median"], 3), gate=False
    )
    metrics["e20.enabled.cpu_seconds"] = _metric(
        round(e20["enabled_median"], 3), gate=False
    )
    metrics["e20.overhead"] = _metric(round(e20["overhead"], 4), gate=False)
    completeness = run_completeness()
    violations = completeness_violations(completeness)
    if violations:
        raise SystemExit(
            "E20 invariant violated: query spans do not reconcile with the "
            "MetricsReport (" + "; ".join(violations) + ")"
        )
    metrics["e20.query_roots"] = _metric(completeness["query_roots"])
    metrics["e20.span_messages"] = _metric(completeness["span_messages"])
    metrics["e20.span_rounds"] = _metric(completeness["span_rounds"])
    metrics["e20.total_spans"] = _metric(completeness["total_spans"], gate=False)
    return metrics


def check_against_baseline(metrics: dict, baseline_path: str, tolerance: float) -> int:
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = []
    for name, entry in sorted(baseline["metrics"].items()):
        if not entry.get("gate", True) or name.endswith(UNGATED_SUFFIXES):
            continue
        if name not in metrics:
            failures.append(f"{name}: present in baseline but not measured any more")
            continue
        old = entry["value"]
        new = metrics[name]["value"]
        if entry.get("higher_is_better"):
            # Counters where bigger means healthier (cache hits): regression
            # is a drop below tolerance, improvement is a rise above it.
            regressed = new < old * (1.0 - tolerance)
            improved = new > old * (1.0 + tolerance)
        else:
            # A zero baseline means "this cost was eliminated": ANY non-zero
            # value is a regression (0 * (1 + tol) is still 0, so the plain
            # comparison covers it — no truthiness guard, or the metric
            # would silently stop being checked).
            regressed = new > old * (1.0 + tolerance)
            improved = old > 0 and new < old * (1.0 - tolerance)
        if regressed:
            failures.append(
                f"{name}: {new} regressed >{tolerance:.0%} vs baseline {old}"
            )
        elif improved:
            print(
                f"note: {name} improved to {new} (baseline {old}); "
                "consider refreshing benchmarks/bench_baseline.json"
            )
    if failures:
        print("benchmark-trajectory regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    gated = sum(
        1
        for name, entry in baseline["metrics"].items()
        if entry.get("gate", True) and not name.endswith(UNGATED_SUFFIXES)
    )
    print(f"benchmark-trajectory gate OK ({gated} gated metrics within {tolerance:.0%})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", required=True, help="path of the BENCH json to write")
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="fail (exit 1) on >tolerance regression vs this committed baseline",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed relative regression for gated metrics (default 0.20)",
    )
    parser.add_argument(
        "--run-label",
        default=os.environ.get("GITHUB_RUN_ID", "local"),
        help="identifier recorded in the document (default: $GITHUB_RUN_ID or 'local')",
    )
    args = parser.parse_args(argv)

    metrics = collect_metrics()
    document = {
        "run": args.run_label,
        "generated_by": "benchmarks/emit_bench_json.py",
        "tolerance": args.tolerance,
        "metrics": metrics,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out} ({len(metrics)} metrics)")

    if args.check:
        return check_against_baseline(metrics, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
