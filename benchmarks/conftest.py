"""Shared infrastructure for the benchmark harness.

Every benchmark both

* times its core operation with ``pytest-benchmark`` (run with
  ``pytest benchmarks/ --benchmark-only``), and
* records the *metrics the paper's claims are about* (message counts, table
  sizes, rule counts, ...) through the ``record`` fixture; those rows are
  printed as per-experiment tables at the end of the run, mirroring the
  experiment index in DESIGN.md / EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

import pytest


class MetricsCollector:
    """Rows of (experiment, label, metrics dict), grouped for the final report."""

    def __init__(self) -> None:
        self.rows: "OrderedDict[str, List[tuple]]" = OrderedDict()

    def add(self, experiment: str, label: str, **metrics: object) -> None:
        self.rows.setdefault(experiment, []).append((label, metrics))

    def render(self) -> str:
        lines: List[str] = []
        for experiment, rows in self.rows.items():
            lines.append("")
            lines.append(f"=== {experiment} ===")
            for label, metrics in rows:
                rendered = ", ".join(f"{key}={value}" for key, value in metrics.items())
                lines.append(f"  {label:45s} {rendered}")
        return "\n".join(lines)


_COLLECTOR = MetricsCollector()


@pytest.fixture
def record():
    """Record one or more metric rows for the final per-experiment report."""
    return _COLLECTOR.add


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _COLLECTOR.rows:
        terminalreporter.write_line("")
        terminalreporter.write_line("Reproduced experiment metrics (see EXPERIMENTS.md):")
        for line in _COLLECTOR.render().splitlines():
            terminalreporter.write_line(line)
