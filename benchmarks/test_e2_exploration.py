"""E2 — interactive provenance exploration (Figure 2).

Regenerates the three zoom levels of Figure 2 (system snapshot, relation
table, single-tuple close-up) plus the hypertree layout and a focus change,
and times how long building those views takes — the operations behind every
click in the visualizer.
"""

import pytest

from repro.core.keys import vid_for
from repro.engine import topology
from repro.engine.tuples import Fact
from repro.protocols import mincost
from repro.viz import HypertreeLayout, exploration_views, refocus


@pytest.fixture(scope="module")
def exploration_setup():
    net = topology.random_connected(8, edge_probability=0.35, seed=7)
    runtime = mincost.setup(net)
    graph = runtime.provenance.build_graph()
    rows = runtime.state("minCost")
    target = max(rows, key=lambda row: row[2])
    return runtime, graph, target


def test_figure2_views(benchmark, record, exploration_setup):
    runtime, graph, target = exploration_setup

    views = benchmark(exploration_views, graph, "minCost", target)
    assert set(views) == {"snapshot", "table", "tuple"}
    record(
        "E2 Figure 2 exploration views (MINCOST, 8 nodes)",
        "zoom levels",
        snapshot_lines=len(views["snapshot"].splitlines()),
        table_rows=len(views["table"].splitlines()) - 1,
        tuple_derivations=len(graph.derivations_of(vid_for(Fact.make("minCost", list(target))))),
        graph_tuples=graph.tuple_count,
        graph_rule_execs=graph.rule_exec_count,
    )


def test_hypertree_layout_and_refocus(benchmark, record, exploration_setup):
    _runtime, graph, target = exploration_setup
    root = vid_for(Fact.make("minCost", list(target)))

    def layout_and_refocus():
        layout = HypertreeLayout().compute(graph, root)
        deepest = max(layout.values(), key=lambda placed: placed.depth)
        return layout, refocus(layout, deepest.vertex_id)

    layout, refocused = benchmark(layout_and_refocus)
    assert all(placed.radius < 1.0 + 1e-9 for placed in refocused.values())
    record(
        "E2 hypertree layout (Figure 2 navigation)",
        "layout + focus change",
        vertices=len(layout),
        max_depth=max(placed.depth for placed in layout.values()),
    )
