"""E5 — declarative networks under churn (use case 1, static vs mobile).

Shows that provenance stays correct while the topology changes, and measures
the cost of absorbing churn for the three routing protocols plus DSR under a
mobility trace.
"""

import pytest

from repro.engine import topology
from repro.engine.mobility import WaypointMobilityModel
from repro.engine.runtime import NetTrailsRuntime
from repro.protocols import distance_vector, dsr, mincost, path_vector

PROTOCOLS = {
    "mincost": (mincost, "minCost"),
    "path_vector": (path_vector, "bestPathCost"),
    "distance_vector": (distance_vector, "bestHop"),
}


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_link_churn_convergence(benchmark, record, name):
    module, relation = PROTOCOLS[name]
    net = topology.random_connected(10, edge_probability=0.3, seed=41)
    runtime = module.setup(net)
    edges = sorted(net.edges)[:4]

    def churn():
        for a, b in edges:
            cost = net.cost(a, b)
            runtime.remove_link(a, b)
            runtime.run_to_quiescence()
            runtime.add_link(a, b, cost)
            runtime.run_to_quiescence()

    before_messages = runtime.message_stats().messages
    benchmark.pedantic(churn, rounds=2, iterations=1)
    churn_messages = (runtime.message_stats().messages - before_messages) // (2 * len(edges) * 2)

    fresh = module.setup(net)
    assert sorted(runtime.state(relation)) == sorted(fresh.state(relation))
    assert runtime.provenance.table_sizes() == fresh.provenance.table_sizes()
    record(
        "E5 convergence under link churn (10 nodes)",
        name,
        messages_per_change=churn_messages,
        messages_full_run=fresh.message_stats().messages,
        provenance_rows=sum(runtime.provenance.table_sizes().values()),
    )


def test_dsr_under_mobility(benchmark, record):
    names = [f"m{i}" for i in range(6)]
    model = WaypointMobilityModel(names, field_size=70.0, radio_range=38.0, seed=5)
    events = list(model.events(duration=16.0, dt=2.0))

    def run_mobile_trace():
        net = topology.Topology(name="manet")
        for name in names:
            net.add_node(name)
        runtime = NetTrailsRuntime(dsr.program(), net, provenance=True)
        runtime.seed_links(run=True)
        runtime.insert("request", ["m0", "m4"])
        runtime.run_to_quiescence()
        consistent_steps = 0
        for event in events:
            if event.kind == "up":
                runtime.add_link(event.source, event.target, 1.0)
            else:
                runtime.remove_link(event.source, event.target)
            runtime.run_to_quiescence()
            for route in dsr.discovered_routes(runtime, "m0", "m4"):
                for a, b in zip(route, route[1:]):
                    assert runtime.topology.has_edge(a, b)
            consistent_steps += 1
        return runtime, consistent_steps

    runtime, steps = benchmark.pedantic(run_mobile_trace, rounds=2, iterations=1)
    record(
        "E5 DSR under waypoint mobility (6 nodes)",
        "mobility trace",
        link_events=len(events),
        consistent_steps=steps,
        provenance_rows=sum(runtime.provenance.table_sizes().values()),
        routes_at_end=len(dsr.discovered_routes(runtime, "m0", "m4")),
    )
