"""E15 — scale saturation: batch size x backend on 1000+-node AS graphs.

The ROADMAP's "larger-scale workloads" item asks where batch sizes saturate
once churn runs on generated AS-level topologies with thousands of nodes.
The workload subsystem makes that a sweep: the ``scale`` profile (1010-node
hierarchical ISP graph, BGP-style prefix announce/withdraw churn plus
hub-concentrated link flaps) is re-run with the churn op stream re-chunked
to different ``batch_size`` values — ops per quiescence window — and under
different execution backends.

What the curve shows: message and event counts per applied delta fall
steeply as the window grows (zero-delay coalescing turns a window into one
batch-first evaluation wave per node) and flatten once windows are large
enough that every wave already touches all affected nodes — the saturation
point.  Backends must not bend the curve: the same spec produces
bit-identical deterministic metrics on serial and concurrent backends.

The default run keeps CI-friendly sizes (one topology, three batch sizes).
Setting ``NETTRAILS_SCALE_BENCH=1`` — the CI ``workflow_dispatch`` opt-in —
extends the sweep to the power-law topology variant, more batch sizes and
the asyncio backend.
"""

import json
import os

import pytest

from repro.workloads import ScenarioDriver, profiles

#: Default (always-run) sweep: ops per quiescence window, serial backend.
BATCH_SIZES = (1, 4, 16)

#: The backend compared against serial at the largest default batch size.
COMPARE_BACKEND = "thread"

EXTENDED = os.environ.get("NETTRAILS_SCALE_BENCH", "").strip().lower() in (
    "1",
    "true",
    "yes",
    "on",
)


def run_profile(spec):
    """Drive one spec to completion; returns its MetricsReport."""
    with ScenarioDriver(spec) as driver:
        return driver.run()


def run_smoke_profile(backend=None, seed=profiles.DEFAULT_SEED):
    """The CI-gated smoke scenario (also used by emit_bench_json.py)."""
    spec = profiles.smoke(seed=seed)
    if backend is not None:
        spec = spec.with_knobs(backend=backend)
    return run_profile(spec)


def churn_cost(report):
    """Churn-side counters: everything after (and excluding) link seeding."""
    totals = report.totals()
    seed_phase = report.phase("seed")
    return {
        "ops": totals["ops"] - seed_phase.ops,
        "deltas": totals["deltas"] - seed_phase.deltas,
        "windows": totals["batches"] - seed_phase.batches,
        "messages": totals["messages"] - seed_phase.messages,
        "events": totals["events"] - seed_phase.events,
        "rounds": totals["rounds"] - seed_phase.rounds,
    }


def test_scale_profile_runs_end_to_end_at_1000_nodes(benchmark, record):
    """The acceptance scenario: >=1000-node AS hierarchy, churned and queried."""
    spec = profiles.scale()
    report = benchmark.pedantic(lambda: run_profile(spec), rounds=1, iterations=1)
    assert report.nodes >= 1000, report.nodes
    assert report.scenario == "scale-isp_hierarchy"
    totals = report.totals()
    assert totals["queries"] > 0, "query waves must interleave with churn"
    assert totals["deltas"] > report.phase("seed").deltas, "churn must apply deltas"
    # Every named churn phase of the profile actually contributed batches.
    for phase_name in ("prefix_announce_withdraw", "hot_hub_skew"):
        assert report.phase(phase_name).batches > 0, phase_name
    record(
        "E15 scale profile (prefix routing, 1010-node ISP hierarchy)",
        "native batches, serial backend",
        nodes=report.nodes,
        deltas=totals["deltas"],
        messages=totals["messages"],
        events=totals["events"],
        rounds=totals["rounds"],
        queries=totals["queries"],
        seconds=round(report.seconds, 2),
    )


def test_batch_size_saturation_curve(record):
    """Sweeping ops-per-window must trace a falling, flattening cost curve."""
    spec = profiles.scale()
    curve = {}
    for batch_size in BATCH_SIZES:
        report = run_profile(spec.with_batch_size(batch_size))
        cost = churn_cost(report)
        curve[batch_size] = cost
        record(
            "E15 batch-size saturation (scale profile churn, serial)",
            f"batch_size={batch_size} ({cost['windows']} windows)",
            messages=cost["messages"],
            events=cost["events"],
            rounds=cost["rounds"],
            msgs_per_delta=round(cost["messages"] / cost["deltas"], 2),
        )
    sizes = list(BATCH_SIZES)
    for smaller, larger in zip(sizes, sizes[1:]):
        assert curve[larger]["messages"] < curve[smaller]["messages"], (
            f"batching stopped paying off between batch_size={smaller} "
            f"({curve[smaller]['messages']} msgs) and {larger} "
            f"({curve[larger]['messages']} msgs)"
        )
        assert curve[larger]["events"] < curve[smaller]["events"], (smaller, larger)
    # Saturation: the per-delta message cost flattens — the last doubling of
    # the window saves proportionally less than the first one did.
    first_gain = curve[sizes[0]]["messages"] / curve[sizes[1]]["messages"]
    last_gain = curve[sizes[1]]["messages"] / curve[sizes[2]]["messages"]
    record(
        "E15 batch-size saturation (scale profile churn, serial)",
        "window-doubling gain ratio",
        first_step=round(first_gain, 2),
        last_step=round(last_gain, 2),
    )


def test_scale_metrics_identical_across_backends_and_runs(record):
    """Determinism at scale: same seed => same counters, any backend."""
    spec = profiles.scale().with_batch_size(16)
    serial_first = run_profile(spec.with_knobs(backend="serial"))
    serial_again = run_profile(spec.with_knobs(backend="serial"))
    concurrent = run_profile(
        spec.with_knobs(backend=COMPARE_BACKEND, backend_workers=4)
    )
    assert serial_first.deterministic_view() == serial_again.deterministic_view()
    assert concurrent.deterministic_view() == serial_first.deterministic_view(), (
        f"{COMPARE_BACKEND} backend bent the scale metrics"
    )
    record(
        "E15 backend determinism (scale profile, batch_size=16)",
        f"serial vs {COMPARE_BACKEND}: identical counters",
        messages=serial_first.totals()["messages"],
        serial_seconds=round(serial_first.seconds, 2),
        **{f"{COMPARE_BACKEND}_seconds": round(concurrent.seconds, 2)},
    )


def test_smoke_profile_report_is_json_serialisable():
    """The smoke report is the CI artifact payload; it must render to JSON."""
    report = run_smoke_profile()
    document = json.dumps(report.to_dict(), sort_keys=True)
    assert '"scenario": "smoke"' in document


@pytest.mark.skipif(not EXTENDED, reason="opt-in: set NETTRAILS_SCALE_BENCH=1")
def test_extended_scale_sweep(record):
    """The workflow_dispatch big run: both AS topologies, wider sweep."""
    for topology_kind in ("isp_hierarchy", "power_law"):
        spec = profiles.scale(topology_kind=topology_kind)
        assert spec.topology.build().node_count() >= 1000
        for batch_size in (1, 4, 16, 64, None):
            for backend in ("serial", "thread", "asyncio"):
                report = run_profile(
                    spec.with_batch_size(batch_size).with_knobs(
                        backend=backend, backend_workers=None if backend == "serial" else 4
                    )
                )
                cost = churn_cost(report)
                record(
                    f"E15 extended sweep ({report.scenario}, {report.nodes} nodes)",
                    f"batch_size={batch_size} backend={backend}",
                    messages=cost["messages"],
                    events=cost["events"],
                    rounds=cost["rounds"],
                    seconds=round(report.seconds, 2),
                )
