"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that the package can be installed editable in offline environments whose
setuptools/pip are too old for PEP 660 editable installs
(``pip install -e . --no-use-pep517 --no-build-isolation``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "NetTrails reproduction: declarative platform for maintaining and "
        "querying provenance in distributed systems"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
